//! Extension: journal-driven energy explanation of one paper-default run.
//!
//! Every other experiment reports *aggregate* outcomes (total joules,
//! mean delay). This one runs a single paper-default scenario with the
//! observability layer forced on and decomposes where the energy went —
//! event by event: how many scheduler decisions fired, how many deferred
//! below Θ, how many packets rode a heartbeat, how often a release reused
//! a live FACH/DCH tail, and how the total energy ledger splits across
//! RRC states. The per-state decomposition must re-add to the report's
//! total energy; its accounted share is the experiment's headline (≈100).
//!
//! The raw JSONL journal behind the tables is exported by `repro_all`
//! (as `BENCH_explain.jsonl`) when `ETRAIN_OBS` enables observability.

use crate::ExperimentResult;
use etrain_radio::RrcState;
use etrain_sim::{Event, ObsMode, Scenario, Table};

use super::{j, pct, s};

/// The journaled scenario this experiment decomposes: the paper-default
/// setup with observability forced on (independent of `ETRAIN_OBS`, so
/// the tables are deterministic regardless of environment).
fn scenario(quick: bool) -> Scenario {
    Scenario::paper_default()
        .duration_secs(if quick { 2400 } else { 7200 })
        .seed(7)
        .obs(ObsMode::Jsonl)
}

/// The experiment plus the raw journal serialized as JSON Lines — the
/// artifact `repro_all` uploads next to the report.
pub struct ExplainRun {
    /// The printable tables and headlines.
    pub result: ExperimentResult,
    /// The run's full event journal, one JSON object per line.
    pub jsonl: String,
}

/// Runs the explanation and keeps the raw JSONL journal.
///
/// # Panics
///
/// Panics if the paper-default scenario fails validation (it cannot).
pub fn run_with_journal(quick: bool) -> ExplainRun {
    let (report, output, journal) = scenario(quick)
        .try_run_journaled()
        .expect("paper-default scenario is valid");
    let journal = journal.expect("observability forced on");
    let metrics = report.metrics.clone().expect("metrics recorded");

    // Decision decomposition from the event stream.
    let mut decisions = 0usize;
    let mut deferrals = 0usize;
    let mut released = 0usize;
    let mut heartbeat_released = 0usize;
    for record in journal.records() {
        if let Event::PiggybackDecision {
            heartbeat_departing,
            budget_k,
            released: n,
            ..
        } = &record.event
        {
            decisions += 1;
            if *n == 0 && *budget_k == Some(0) {
                deferrals += 1;
            }
            released += n;
            if *heartbeat_departing {
                heartbeat_released += n;
            }
        }
    }

    let mut events = Table::new("explain — event journal summary", &["event", "count"]);
    for (kind, count) in journal.counts_by_kind() {
        events.push_row_strings(vec![kind.to_owned(), count.to_string()]);
    }

    let mut decisions_table = Table::new(
        "explain — scheduler decision decomposition",
        &["quantity", "count"],
    );
    for (label, count) in [
        ("slot decisions with queued work", decisions),
        ("deferred below theta", deferrals),
        ("packets released", released),
        ("released on a heartbeat", heartbeat_released),
        (
            "transmissions reusing a live tail",
            metrics.tail_reuses as usize,
        ),
        ("heartbeats fired", metrics.heartbeats as usize),
    ] {
        decisions_table.push_row_strings(vec![label.to_owned(), count.to_string()]);
    }

    // Per-RRC-state energy ledger, re-added against the report total.
    let timeline = output.timeline();
    let gauges = [
        ("IDLE", RrcState::Idle, metrics.energy_idle_j),
        ("FACH", RrcState::Fach, metrics.energy_fach_j),
        ("DCH", RrcState::Dch, metrics.energy_dch_j),
    ];
    let decomposed: f64 = gauges.iter().filter_map(|(_, _, g)| *g).sum();
    let mut energy = Table::new(
        "explain — energy ledger by RRC state",
        &["state", "time_s", "energy_j", "share"],
    );
    for (label, state, gauge) in gauges {
        let joules = gauge.unwrap_or(0.0);
        energy.push_row_strings(vec![
            label.to_owned(),
            s(timeline.time_in_state_s(state)),
            j(joules),
            pct(joules / decomposed),
        ]);
    }
    energy.push_row_strings(vec![
        "total (decomposed)".to_owned(),
        s(report.horizon_s),
        j(decomposed),
        pct(decomposed / report.total_energy_j),
    ]);
    energy.push_row_strings(vec![
        "total (report ledger)".to_owned(),
        s(report.horizon_s),
        j(report.total_energy_j),
        "-".to_owned(),
    ]);

    let accounted_pct = 100.0 * decomposed / report.total_energy_j;
    let result = ExperimentResult::from_tables(vec![events, decisions_table, energy])
        .headline("energy_accounted_pct", round1(accounted_pct), "%")
        .headline("journal_events", journal.len() as f64, "count")
        .headline(
            "tail_utilization_pct",
            round1(100.0 * metrics.tail_utilization.unwrap_or(0.0)),
            "%",
        );
    ExplainRun {
        result,
        jsonl: journal.to_jsonl(),
    }
}

/// Registry entry point: the tables and headlines without the raw journal.
pub fn run(quick: bool) -> ExperimentResult {
    run_with_journal(quick).result
}

fn round1(value: f64) -> f64 {
    (value * 10.0).round() / 10.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_decomposition_accounts_for_the_full_ledger() {
        let run = run_with_journal(true);
        let accounted = run
            .result
            .headlines
            .iter()
            .find(|h| h.metric == "energy_accounted_pct")
            .expect("headline present");
        assert!(
            (accounted.value - 100.0).abs() < 0.1,
            "decomposition must re-add to the total: {}",
            accounted.value
        );
        // The exported journal is non-trivial and one-JSON-object-per-line.
        assert!(run.jsonl.lines().count() > 100);
        assert!(run.jsonl.lines().all(|l| l.starts_with('{')));
    }
}
