//! Observability layer for the eTrain reproduction.
//!
//! The paper's evaluation lives or dies on per-event energy accounting:
//! every heartbeat, tail re-use, and piggyback burst must be attributable
//! to a joule figure (PAPER.md §IV). Endpoint aggregates such as
//! `RunReport` answer *what* a run cost; this crate answers *why*, through
//! three cooperating facilities:
//!
//! 1. **Structured event journal** ([`Event`], [`EventRecord`],
//!    [`Journal`]) — a time-stamped, sequence-numbered record of every
//!    decision the system makes: heartbeats firing, tails being re-used,
//!    piggyback decisions with their Lyapunov drift terms and Θ
//!    comparison, RRC transitions, shed/forced-flush actions, health
//!    ladder transitions, and retry attempts. Journals from parallel
//!    `RunGrid` workers merge deterministically by `(run, time, seq)`, so
//!    a serial and a parallel execution of the same grid produce
//!    byte-identical JSON Lines output.
//! 2. **Metrics registry** ([`MetricsRegistry`], [`MetricsSnapshot`]) —
//!    typed counters, gauges, and histograms (energy per RRC state, tail
//!    utilization, queue depth, decision counts) snapshotted into
//!    `RunReport` and `BENCH_repro.json`.
//! 3. **Profiling hooks** ([`prof`]) — per-phase wall-clock spans around
//!    scheduler slots and engine stepping, exported as a flame-style text
//!    summary from `repro_all`. Wall-clock readings never feed any
//!    deterministic output; they live in a process-wide atomics registry
//!    that is only ever printed.
//!
//! The whole layer is **zero-cost when off**: the [`ObsMode`] knob
//! (environment variable `ETRAIN_OBS`, or `Scenario::obs`) defaults to
//! [`ObsMode::Off`], in which case no events are allocated, no recorder is
//! consulted, and simulation output is bit-for-bit identical to a build
//! without this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durable;
mod event;
pub mod fleet;
mod metrics;
mod mode;
pub mod prof;
mod recorder;

pub use durable::{
    crc32, decode_event_records, scan_segment, AppendFault, DurableRecorder, FrameWriter,
    SegmentScan, TailStatus, FRAME_HEADER_BYTES, MAX_FRAME_BYTES, WAL_MAGIC,
};
pub use event::{Event, EventRecord, Journal};
pub use fleet::{ClassSnapshot, FleetSnapshot, FleetTally};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
pub use mode::{ObsMode, OBS_ENV};
pub use recorder::{JsonLinesRecorder, NullRecorder, Recorder, RingRecorder};

use std::sync::atomic::{AtomicU64, Ordering};

static EVENTS_RECORDED: AtomicU64 = AtomicU64::new(0);
static JOURNALS_MERGED: AtomicU64 = AtomicU64::new(0);
static SNAPSHOTS_TAKEN: AtomicU64 = AtomicU64::new(0);

/// Process-wide observability tallies, mirroring `oracle::counters()`.
///
/// These are *reporting* counters for `BENCH_repro.json` summaries — they
/// are monotone across a process lifetime (modulo [`reset_counters`]) and
/// deliberately carry no per-run detail; per-run detail lives in the
/// [`Journal`] and [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObsCounters {
    /// Events pushed into any [`Journal`] in this process.
    pub events_recorded: u64,
    /// Journal merge operations performed (one per grid run).
    pub journals_merged: u64,
    /// Metrics snapshots taken from a [`MetricsRegistry`].
    pub snapshots_taken: u64,
}

/// Reads the process-wide observability tallies.
pub fn counters() -> ObsCounters {
    ObsCounters {
        events_recorded: EVENTS_RECORDED.load(Ordering::Relaxed),
        journals_merged: JOURNALS_MERGED.load(Ordering::Relaxed),
        snapshots_taken: SNAPSHOTS_TAKEN.load(Ordering::Relaxed),
    }
}

/// Resets the process-wide observability tallies to zero (test hygiene).
pub fn reset_counters() {
    EVENTS_RECORDED.store(0, Ordering::Relaxed);
    JOURNALS_MERGED.store(0, Ordering::Relaxed);
    SNAPSHOTS_TAKEN.store(0, Ordering::Relaxed);
}

pub(crate) fn bump_events(n: u64) {
    EVENTS_RECORDED.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn bump_merges() {
    JOURNALS_MERGED.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn bump_snapshots() {
    SNAPSHOTS_TAKEN.fetch_add(1, Ordering::Relaxed);
}
