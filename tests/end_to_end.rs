//! Cross-crate integration tests: trace generation → scheduling →
//! transmission engine → radio energy accounting → metrics.

use etrain::radio::RadioParams;
use etrain::sim::{BandwidthSource, Scenario, SchedulerKind};
use etrain::trace::heartbeats::TrainAppSpec;
use etrain::trace::packets::CargoWorkload;

#[test]
fn paper_default_pipeline_produces_consistent_report() {
    let report = Scenario::paper_default()
        .duration_secs(3600)
        .scheduler(SchedulerKind::ETrain {
            theta: 1.0,
            k: None,
        })
        .seed(3)
        .run();

    // Energy identities.
    assert!(report.extra_energy_j > 0.0);
    assert!(
        (report.extra_energy_j - report.transmission_energy_j - report.tail_energy_j).abs() < 1e-9
    );
    assert!((report.total_energy_j - report.extra_energy_j - report.idle_energy_j).abs() < 1e-9);
    // One hour of the paper trio: 12 (QQ) + 14 (WeChat) + 15 (WhatsApp).
    assert_eq!(report.heartbeats_sent, 41);
    // Metrics sanity.
    assert!(report.deadline_violation_ratio >= 0.0 && report.deadline_violation_ratio <= 1.0);
    assert!(report.normalized_delay_s >= 0.0);
    assert!(report.busy_time_s > 0.0 && report.busy_time_s < 3600.0);
    // Per-app reports cover all completed packets.
    let per_app_total: usize = report.per_app.iter().map(|a| a.packets).sum();
    assert_eq!(per_app_total, report.packets_completed);
}

#[test]
fn etrain_beats_baseline_on_every_seed() {
    for seed in 0..5 {
        let base = Scenario::paper_default().duration_secs(2400).seed(seed);
        let baseline = base.clone().scheduler(SchedulerKind::Baseline).run();
        let etrain = base
            .scheduler(SchedulerKind::ETrain {
                theta: 2.0,
                k: None,
            })
            .run();
        assert!(
            etrain.extra_energy_j < baseline.extra_energy_j,
            "seed {seed}: eTrain {} J vs baseline {} J",
            etrain.extra_energy_j,
            baseline.extra_energy_j
        );
    }
}

#[test]
fn heartbeat_energy_matches_radio_model() {
    // One lone QQ app in standby: every heartbeat pays one full tail plus
    // its (tiny) transmission energy.
    let report = Scenario::paper_default()
        .duration_secs(3600)
        .trains(vec![TrainAppSpec::qq()])
        .workload(CargoWorkload::new(Vec::new()))
        .bandwidth(BandwidthSource::Constant(450_000.0))
        .scheduler(SchedulerKind::Baseline)
        .seed(0)
        .run();
    let full_tail = RadioParams::galaxy_s4_3g().full_tail_energy_j();
    assert_eq!(report.heartbeats_sent, 12);
    assert!((report.tail_energy_j - 12.0 * full_tail).abs() < 0.5);
    assert!(report.transmission_energy_j < 1.0);
}

#[test]
fn reports_are_bitwise_reproducible() {
    let make = || {
        Scenario::paper_default()
            .duration_secs(1800)
            .scheduler(SchedulerKind::PerEs { omega: 0.3 })
            .seed(11)
            .run()
    };
    assert_eq!(make(), make());
}

#[test]
fn trace_io_roundtrip_feeds_identical_simulation() {
    use etrain::trace::io;

    // Persist a workload and a heartbeat trace, reload them, and verify
    // the simulation outcome is identical to the in-memory original.
    let packets = CargoWorkload::paper_default(0.08).generate(1800.0, 5);
    let heartbeats = etrain::trace::heartbeats::synthesize(&TrainAppSpec::paper_trio(), 1800.0, 5);

    let mut pbuf = Vec::new();
    io::write_packets_csv(&packets, &mut pbuf).expect("write packets");
    let mut hbuf = Vec::new();
    io::write_heartbeats_csv(&heartbeats, &mut hbuf).expect("write heartbeats");
    let packets2 = io::read_packets_csv(pbuf.as_slice()).expect("read packets");
    let heartbeats2 = io::read_heartbeats_csv(hbuf.as_slice()).expect("read heartbeats");

    let run = |p: Vec<etrain::trace::packets::Packet>,
               h: Vec<etrain::trace::heartbeats::Heartbeat>| {
        Scenario::paper_default()
            .duration_secs(1800)
            .packets(p)
            .heartbeats(h)
            .bandwidth(BandwidthSource::Constant(500_000.0))
            .scheduler(SchedulerKind::ETrain {
                theta: 1.0,
                k: None,
            })
            .run()
    };
    assert_eq!(run(packets, heartbeats), run(packets2, heartbeats2));
}

#[test]
fn umbrella_crate_reexports_compose() {
    // The umbrella crate's modules interoperate without importing the
    // underlying crates directly.
    let params = etrain::radio::RadioParams::galaxy_s4_3g();
    let profile = etrain::sched::AppProfile::new("X", etrain::sched::CostProfile::weibo(60.0));
    let mut core = etrain::core::ETrainCore::new(etrain::core::CoreConfig::default());
    let app = core.register_cargo(profile);
    let _train = core.register_train("QQ");
    let id = core
        .submit(app, etrain::core::TransmitRequest::upload(100), 0.0)
        .expect("registered")
        .id()
        .expect("unbounded admission admits");
    assert_eq!(id, etrain::core::RequestId(0));
    assert!(params.tail_time_s() > 0.0);
}

#[test]
fn degenerate_empty_workload_is_well_defined_under_strict_oracle() {
    // A device with no cargo and no trains spends the whole horizon idle.
    // Every ratio metric must degrade to exactly 0.0 (never NaN), and the
    // run must satisfy the simulation oracle's invariants end to end.
    let report = Scenario::paper_default()
        .oracle(etrain::sim::OracleMode::Strict)
        .duration_secs(900)
        .packets(vec![])
        .heartbeats(vec![])
        .try_run()
        .expect("empty workload is a valid degenerate scenario");
    assert_eq!(report.packets_completed, 0);
    assert_eq!(report.heartbeats_sent, 0);
    assert_eq!(report.extra_energy_j, 0.0);
    assert_eq!(report.busy_time_s, 0.0);
    assert_eq!(report.tail_fraction(), 0.0);
    assert_eq!(report.abandonment_ratio, 0.0);
    assert_eq!(report.normalized_delay_s, 0.0);
    assert_eq!(report.deadline_violation_ratio, 0.0);
    // Only the idle baseline remains.
    assert!((report.total_energy_j - report.idle_energy_j).abs() < 1e-12);
    let outcome = report.oracle.expect("strict mode attaches the audit");
    assert!(outcome.is_clean());
    assert!(outcome.checks > 0);
}
