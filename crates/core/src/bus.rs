//! The eTrain Broadcast module: one-to-many decision delivery.
//!
//! The Android implementation uses `BroadcastReceiver` because "broadcast
//! is more efficient for one-to-many communications, which is the case for
//! eTrain" (paper Sec. V-1). This is the in-process equivalent: every
//! subscriber gets its own unbounded channel and every published message is
//! cloned to all of them.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// A broadcast bus: clone-to-all pub/sub over crossbeam channels.
///
/// Subscribers that have been dropped are pruned lazily on publish.
/// The bus itself is cheap to share behind an `Arc`.
///
/// # Examples
///
/// ```
/// use etrain_core::Bus;
///
/// let bus: Bus<u32> = Bus::new();
/// let a = bus.subscribe();
/// let b = bus.subscribe();
/// bus.publish(7);
/// assert_eq!(a.recv().unwrap(), 7);
/// assert_eq!(b.recv().unwrap(), 7);
/// ```
#[derive(Debug)]
pub struct Bus<T> {
    subscribers: Mutex<Vec<Sender<T>>>,
}

impl<T: Clone> Bus<T> {
    /// Creates a bus with no subscribers.
    pub fn new() -> Self {
        Bus {
            subscribers: Mutex::new(Vec::new()),
        }
    }

    /// Registers a new subscriber and returns its receiving end.
    pub fn subscribe(&self) -> Receiver<T> {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push(tx);
        rx
    }

    /// Publishes `message` to every live subscriber, returning how many
    /// received it. Disconnected subscribers are removed.
    pub fn publish(&self, message: T) -> usize {
        let mut subs = self.subscribers.lock();
        subs.retain(|tx| tx.send(message.clone()).is_ok());
        subs.len()
    }

    /// Number of live subscribers (stale ones are only pruned on publish,
    /// so this is an upper bound between publishes).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }
}

impl<T: Clone> Default for Bus<T> {
    fn default() -> Self {
        Bus::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_to_all_subscribers() {
        let bus: Bus<&'static str> = Bus::new();
        let a = bus.subscribe();
        let b = bus.subscribe();
        assert_eq!(bus.publish("hello"), 2);
        assert_eq!(a.recv().unwrap(), "hello");
        assert_eq!(b.recv().unwrap(), "hello");
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let bus: Bus<u8> = Bus::new();
        let a = bus.subscribe();
        {
            let _b = bus.subscribe();
        } // dropped immediately
        assert_eq!(bus.publish(1), 1);
        assert_eq!(a.recv().unwrap(), 1);
        assert_eq!(bus.subscriber_count(), 1);
    }

    #[test]
    fn publish_without_subscribers_is_fine() {
        let bus: Bus<u8> = Bus::new();
        assert_eq!(bus.publish(1), 0);
    }

    #[test]
    fn messages_queue_per_subscriber() {
        let bus: Bus<u8> = Bus::new();
        let rx = bus.subscribe();
        bus.publish(1);
        bus.publish(2);
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn bus_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Bus<u64>>();
    }
}
