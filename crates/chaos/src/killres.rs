//! The kill/resume harness: crash-consistency trials over randomized
//! kill points and snapshot cadences.
//!
//! Each trial runs a scenario twice on identical traces: once
//! uninterrupted ([`Scenario::try_run_journaled_on`]) and once killed
//! after a seed-derived number of engine events and resumed from the last
//! durable snapshot ([`Scenario::try_run_interrupted_on`]). The resumed
//! run's report and merged journal must be **bit-for-bit** identical to
//! the uninterrupted run's — journals are compared as serialized JSONL
//! bytes, not structurally. Any divergence means the engine's
//! snapshot/replay path lost determinism.
//!
//! [`Scenario::try_run_journaled_on`]: etrain_sim::Scenario::try_run_journaled_on
//! [`Scenario::try_run_interrupted_on`]: etrain_sim::Scenario::try_run_interrupted_on

use etrain_obs::{Journal, ObsMode};
use etrain_sim::{conformance_kinds, CasePlan, EngineKind};
use etrain_trace::faults::hash_unit;
use serde::{Deserialize, Serialize};

/// One crash-consistency trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KillResumeTrial {
    /// The scenario seed.
    pub seed: u64,
    /// The scheduler label.
    pub kind: String,
    /// Engine events after which the run was killed.
    pub kill_after_events: u64,
    /// Snapshot cadence, in slot boundaries.
    pub cadence_slots: u64,
    /// Whether the resumed run matched the uninterrupted one exactly.
    pub identical: bool,
    /// What diverged, when it did.
    pub detail: Option<String>,
}

/// The outcome of a batch of kill/resume trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KillResumeReport {
    /// Every trial, in execution order.
    pub trials: Vec<KillResumeTrial>,
}

impl KillResumeReport {
    /// Trials that matched bit-for-bit.
    pub fn identical_count(&self) -> usize {
        self.trials.iter().filter(|t| t.identical).count()
    }

    /// `true` when every trial matched.
    pub fn all_identical(&self) -> bool {
        self.identical_count() == self.trials.len()
    }
}

/// The snapshot cadences trials rotate through: frequent, moderate, and
/// sparse enough that early kills land before the first snapshot
/// (exercising the resume-from-nothing path).
const CADENCES: [u64; 3] = [8, 32, 128];

/// Runs `trials_per_seed` kill/resume trials for each seed, with kill
/// points derived deterministically from the seed and trial index.
pub fn run_kill_resume(seeds: &[u64], trials_per_seed: usize) -> KillResumeReport {
    let kinds = conformance_kinds();
    let mut trials = Vec::with_capacity(seeds.len() * trials_per_seed);
    for &seed in seeds {
        let plan = CasePlan::from_seed(seed, seed % 2 == 1);
        let kind = kinds[(seed % kinds.len() as u64) as usize];
        // Alternate kernels by seed parity (the campaign's convention) so
        // crash-consistency trials cover the event kernel's batched
        // snapshot boundaries too.
        let engine = if seed % 2 == 0 {
            EngineKind::Slot
        } else {
            EngineKind::Event
        };
        let scenario = plan
            .scenario()
            .scheduler(kind)
            .engine(engine)
            .obs(ObsMode::Ring);
        let traces = scenario.generate_traces();
        let (base_report, base_output, base_journal) = scenario
            .try_run_journaled_on(&traces)
            .expect("generated plans validate");
        let base_jsonl = base_journal.as_ref().map(Journal::to_jsonl);
        let total_events = base_output.events_processed.max(1);
        for trial in 0..trials_per_seed {
            // A kill point anywhere in (0, total): never 0 (that would
            // skip the kill entirely) and occasionally right before the
            // end (a nearly complete run).
            let unit = hash_unit(seed, 0x1c11 + trial as u64, 0x7e57);
            let kill_after_events = 1 + (unit * (total_events - 1) as f64) as u64;
            let cadence_slots = CADENCES[trial % CADENCES.len()];
            let trial =
                match scenario.try_run_interrupted_on(&traces, kill_after_events, cadence_slots) {
                    Ok((report, _output, journal)) => {
                        let report_ok = report == base_report;
                        let journal_ok = journal.as_ref().map(Journal::to_jsonl) == base_jsonl;
                        let detail = match (report_ok, journal_ok) {
                            (true, true) => None,
                            (false, _) => Some("resumed report diverged".to_string()),
                            (true, false) => Some("merged journal diverged".to_string()),
                        };
                        KillResumeTrial {
                            seed,
                            kind: kind.to_string(),
                            kill_after_events,
                            cadence_slots,
                            identical: report_ok && journal_ok,
                            detail,
                        }
                    }
                    Err(error) => KillResumeTrial {
                        seed,
                        kind: kind.to_string(),
                        kill_after_events,
                        cadence_slots,
                        identical: false,
                        detail: Some(format!("resume failed: {error}")),
                    },
                };
            trials.push(trial);
        }
    }
    KillResumeReport { trials }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_resume_is_bit_for_bit_identical() {
        let seeds: Vec<u64> = (0..4).collect();
        let report = run_kill_resume(&seeds, 3);
        assert_eq!(report.trials.len(), 12);
        assert!(
            report.all_identical(),
            "divergent trials: {:?}",
            report
                .trials
                .iter()
                .filter(|t| !t.identical)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn kill_points_vary_and_stay_in_range() {
        let report = run_kill_resume(&[3], 6);
        let kills: Vec<u64> = report.trials.iter().map(|t| t.kill_after_events).collect();
        assert!(kills.iter().all(|&k| k >= 1));
        let distinct: std::collections::BTreeSet<u64> = kills.iter().copied().collect();
        assert!(distinct.len() > 1, "kill points should vary: {kills:?}");
    }
}
