//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided: an unbounded multi-producer
//! **multi-consumer** queue (`Mutex<VecDeque>` + `Condvar`), matching the
//! `crossbeam-channel` property the workspace relies on — `Receiver` is
//! `Clone`, so a pool of workers can share one job queue and each queued
//! item is delivered to exactly one of them. The error types are re-used
//! from `std::sync::mpsc` so call sites read like the real crate.

pub mod channel {
    //! Multi-producer multi-consumer channels with the `crossbeam`
    //! method surface used by this workspace.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(|poisoned| {
                // A panicking sender/receiver cannot corrupt a VecDeque of
                // already-sent values; keep delivering what is queued.
                poisoned.into_inner()
            })
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.lock();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake blocked receivers so they observe disconnection.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.lock();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    /// The receiving half of an unbounded channel. Cloning produces
    /// another consumer of the *same* queue (each message is delivered to
    /// exactly one receiver), which is what lets worker pools share a
    /// single job channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.lock().receivers -= 1;
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.lock();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .0
                    .ready
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }

        /// Blocks up to `timeout` for the next message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.0.lock();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .0
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                state = guard;
            }
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.0.lock();
            match state.queue.pop_front() {
                Some(value) => Ok(value),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Iterates over received messages, blocking between them; ends
        /// when all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Iterates over already-queued messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    #[derive(Debug)]
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Non-blocking iterator returned by [`Receiver::try_iter`].
    #[derive(Debug)]
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip() {
            let (tx, rx) = unbounded();
            tx.send(3).unwrap();
            assert_eq!(rx.recv().unwrap(), 3);
            assert!(rx.try_recv().is_err());
        }

        #[test]
        fn timeout_expires() {
            let (tx, rx) = unbounded::<u8>();
            let err = rx.recv_timeout(Duration::from_millis(1)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
            drop(tx);
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_with_no_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn cloned_receivers_share_one_queue() {
            let (tx, rx1) = unbounded::<u32>();
            let rx2 = rx1.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut seen: Vec<u32> = rx1.try_iter().take(50).collect();
            seen.extend(rx2.iter());
            seen.sort_unstable();
            assert_eq!(seen, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn workers_drain_shared_receiver_concurrently() {
            let (tx, rx) = unbounded::<usize>();
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let counted: usize = std::thread::scope(|scope| {
                (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        scope.spawn(move || rx.iter().count())
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum()
            });
            // The local receiver also competes; drain what it got.
            let local = rx.try_iter().count();
            assert_eq!(counted + local, 1000);
        }
    }
}
