//! The runner's core guarantee, checked end to end: a [`RunGrid`] executed
//! on a worker pool produces **bit-for-bit identical** reports to the
//! fully serial `jobs = 1` path — across every scheduler kind, with and
//! without fault injection, and independent of the worker count.

use etrain_sim::{
    replicate, Comparison, FaultPlan, RunGrid, RunReport, RunSpec, Scenario, SchedulerKind,
};

fn all_kinds() -> [SchedulerKind; 4] {
    [
        SchedulerKind::Baseline,
        SchedulerKind::ETrain {
            theta: 0.2,
            k: Some(20),
        },
        SchedulerKind::PerEs { omega: 0.5 },
        SchedulerKind::ETime { v_bytes: 50_000.0 },
    ]
}

fn non_trivial_faults() -> FaultPlan {
    FaultPlan::seeded(42)
        .with_loss(0.25)
        .with_outage(200.0, 320.0)
        .with_train_death(400.0, 700.0)
}

/// A grid crossing all four schedulers with three seeds each.
fn full_grid(base: &Scenario) -> RunGrid {
    let mut grid = RunGrid::new();
    for kind in all_kinds() {
        for seed in [1u64, 2, 3] {
            grid.push(RunSpec::new(
                format!("{kind}/seed={seed}"),
                base.clone().scheduler(kind).seed(seed),
            ));
        }
    }
    grid
}

fn rebuild(base: &Scenario, jobs: usize) -> Vec<RunReport> {
    full_grid(base).jobs(jobs).run()
}

#[test]
fn parallel_equals_serial_without_faults() {
    let base = Scenario::paper_default().duration_secs(900);
    let serial = rebuild(&base, 1);
    for jobs in [2, 4, 8] {
        assert_eq!(serial, rebuild(&base, jobs), "jobs={jobs} diverged");
    }
}

#[test]
fn parallel_equals_serial_with_non_trivial_faults() {
    let base = Scenario::paper_default()
        .duration_secs(900)
        .faults(non_trivial_faults());
    let serial = rebuild(&base, 1);
    for jobs in [2, 4, 8] {
        assert_eq!(
            serial,
            rebuild(&base, jobs),
            "jobs={jobs} diverged under faults"
        );
    }
}

#[test]
fn grid_matches_direct_scenario_runs() {
    // The grid (trace cache included) must reproduce what Scenario::run
    // computes on its own, job by job.
    let base = Scenario::paper_default()
        .duration_secs(900)
        .faults(non_trivial_faults());
    let grid = full_grid(&base).jobs(4);
    let reports = grid.run();
    for (spec, report) in grid.specs().iter().zip(&reports) {
        assert_eq!(&spec.scenario.run(), report, "{} diverged", spec.label);
    }
}

#[test]
fn comparison_and_replication_are_worker_count_invariant() {
    // The public wrappers run on the default worker count (machine/env
    // dependent); their output must equal explicit serial runs.
    let base = Scenario::paper_default().duration_secs(900).seed(6);
    let comparison = Comparison::run(&base, &all_kinds());
    for (kind, report) in all_kinds().iter().zip(&comparison.reports) {
        assert_eq!(&base.clone().scheduler(*kind).run(), report);
    }

    let replicated = replicate(&base, &[4, 5, 6]);
    for (seed, report) in [4u64, 5, 6].iter().zip(&replicated.runs) {
        assert_eq!(&base.clone().seed(*seed).run(), report);
    }
}
