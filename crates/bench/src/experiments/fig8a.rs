//! Fig. 8(a): the E-D panel comparing eTrain, PerES, eTime and the
//! baseline at λ = 0.08.
//!
//! Paper result: eTrain's curve dominates — at any normalized delay it
//! spends the least energy; eTime sits between eTrain and PerES; the
//! baseline is a single point at zero delay and maximum energy.

use crate::ExperimentResult;
use etrain_sim::sweep::{ed_curve, log_space};
use etrain_sim::{SchedulerKind, Table};

use super::{j, paper_base, s};

/// Runs the Fig. 8(a) reproduction.
pub fn run(quick: bool) -> ExperimentResult {
    let base = paper_base(quick);
    let n = if quick { 3 } else { 8 };

    let mut table = Table::new(
        "Fig. 8(a) — E-D panel at λ = 0.08 (knob traces each curve)",
        &["algorithm", "knob", "energy_j", "delay_s"],
    );

    let baseline = base.clone().scheduler(SchedulerKind::Baseline).run();
    table.push_row_strings(vec![
        "Baseline".to_owned(),
        "-".to_owned(),
        j(baseline.extra_energy_j),
        s(baseline.normalized_delay_s),
    ]);

    for p in ed_curve(&base, &log_space(0.25, 12.0, n), |theta| {
        SchedulerKind::ETrain { theta, k: None }
    }) {
        table.push_row_strings(vec![
            "eTrain".to_owned(),
            format!("Θ={:.2}", p.knob),
            j(p.energy_j),
            s(p.delay_s),
        ]);
    }
    for p in ed_curve(&base, &log_space(0.02, 2.0, n), |omega| {
        SchedulerKind::PerEs { omega }
    }) {
        table.push_row_strings(vec![
            "PerES".to_owned(),
            format!("Ω={:.2}", p.knob),
            j(p.energy_j),
            s(p.delay_s),
        ]);
    }
    for p in ed_curve(&base, &log_space(5_000.0, 200_000.0, n), |v_bytes| {
        SchedulerKind::ETime { v_bytes }
    }) {
        table.push_row_strings(vec![
            "eTime".to_owned(),
            format!("V={:.0}B", p.knob),
            j(p.energy_j),
            s(p.delay_s),
        ]);
    }
    ExperimentResult::from_tables(vec![table]).headline_cell(
        "baseline_energy_j",
        0,
        0,
        "energy_j",
        "J",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(table: &Table, algo: &str) -> Vec<(f64, f64)> {
        table
            .to_csv()
            .lines()
            .skip(1)
            .filter(|r| r.starts_with(algo))
            .map(|r| {
                let cells: Vec<&str> = r.split(',').collect();
                (cells[3].parse().unwrap(), cells[2].parse().unwrap())
            })
            .collect()
    }

    fn near(points: &[(f64, f64)], probe: f64) -> f64 {
        points
            .iter()
            .min_by(|a, b| (a.0 - probe).abs().total_cmp(&(b.0 - probe).abs()))
            .map(|p| p.1)
            .unwrap()
    }

    #[test]
    fn etrain_beats_peres_and_baseline_quick() {
        // Quick-mode grids are too sparse for the full four-way ordering
        // (see the ignored full-fidelity test below), but eTrain must
        // already dominate PerES and the baseline.
        let tables = run(true).tables;
        let t = &tables[0];
        let probe = 55.0;
        let etrain = near(&curve(t, "eTrain"), probe);
        let peres = near(&curve(t, "PerES"), probe);
        let baseline = curve(t, "Baseline")[0].1;
        assert!(
            etrain < peres && peres < baseline,
            "ordering violated: eTrain {etrain}, PerES {peres}, baseline {baseline}"
        );
    }

    /// Full-fidelity orderings at the 2-hour horizon. Slow in debug
    /// builds; run with `cargo test -p etrain-bench --release -- --ignored`.
    ///
    /// The reproduced panel confirms: eTrain < PerES < baseline and
    /// eTime < PerES at matched delay. eTrain vs eTime is the one place
    /// our curves deviate from the paper at the reference rate λ = 0.08 —
    /// see EXPERIMENTS.md for the quantified discussion (eTime wins a few
    /// percent of energy there but violates 5–7 % of deadlines where
    /// eTrain violates ≈ 1 %).
    #[test]
    #[ignore = "full-fidelity run; execute in release mode"]
    fn full_ordering_at_matched_delay() {
        let tables = run(false).tables;
        let t = &tables[0];
        let probe = 55.0;
        let etrain = near(&curve(t, "eTrain"), probe);
        let peres = near(&curve(t, "PerES"), probe);
        let etime = near(&curve(t, "eTime"), probe);
        let baseline = curve(t, "Baseline")[0].1;
        assert!(
            etrain < peres && peres < baseline && etime < peres,
            "ordering violated: eTrain {etrain}, eTime {etime}, PerES {peres}, baseline {baseline}"
        );
    }
}
