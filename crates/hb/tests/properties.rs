//! Property tests for the heartbeat monitor: the detector must recover
//! cycles under bounded jitter and never predict departures in the past.

use etrain_hb::{CycleDetector, DetectedPattern, HeartbeatMonitor};
use etrain_trace::TrainAppId;
use proptest::prelude::*;

proptest! {
    /// A fixed cycle with bounded jitter is detected within the jitter
    /// bound, for any cycle in the measured range and any phase.
    #[test]
    fn fixed_cycle_recovered_under_jitter(
        cycle in 60.0f64..1800.0,
        phase in 0.0f64..300.0,
        jitter_frac in 0.0f64..0.04,
        seed in 0u64..1000,
        n in 5usize..30,
    ) {
        let jitter = cycle * jitter_frac;
        let mut rng = etrain_trace::rng::seeded(seed);
        let mut detector = CycleDetector::new();
        for i in 0..n {
            use rand::Rng;
            let noise = if jitter > 0.0 { rng.gen_range(-jitter..=jitter) } else { 0.0 };
            detector.observe(phase + i as f64 * cycle + noise);
        }
        match detector.detect() {
            DetectedPattern::Fixed { cycle_s, confidence } => {
                prop_assert!((cycle_s - cycle).abs() <= 2.0 * jitter + 1e-6,
                    "estimated {cycle_s} vs true {cycle} (jitter {jitter})");
                prop_assert!(confidence > 0.5);
            }
            other => prop_assert!(false, "expected fixed cycle, got {other:?}"),
        }
    }

    /// Predictions are always strictly in the future of the query time.
    #[test]
    fn predictions_are_in_the_future(
        cycle in 60.0f64..600.0,
        n in 3usize..20,
        query_offset in 0.0f64..2000.0,
    ) {
        let mut monitor = HeartbeatMonitor::new();
        for i in 0..n {
            monitor.observe(TrainAppId(0), i as f64 * cycle);
        }
        let last = (n - 1) as f64 * cycle;
        let query = last + query_offset.min(cycle * 2.0); // stay within liveness
        if let Some((_, when)) = monitor.next_departure(query) {
            prop_assert!(when > query, "predicted {when} <= query {query}");
        }
        for (_, when) in monitor.departures_between(query, query + 10.0 * cycle) {
            prop_assert!(when > query);
        }
    }

    /// Doubling cycles are never misclassified as fixed once at least two
    /// full levels have been observed.
    #[test]
    fn doubling_not_misread_as_fixed(
        initial in 30.0f64..120.0,
        beats_per_level in 3u32..8,
    ) {
        let mut detector = CycleDetector::new();
        let mut t = 0.0;
        for level in 0..3 {
            let cycle = initial * 2f64.powi(level);
            for _ in 0..beats_per_level {
                detector.observe(t);
                t += cycle;
            }
        }
        match detector.detect() {
            DetectedPattern::Fixed { .. } =>
                prop_assert!(false, "doubling misdetected as fixed"),
            DetectedPattern::Adaptive { levels_s, .. } =>
                prop_assert!(levels_s.len() >= 2),
            DetectedPattern::Unknown => {} // acceptable: never wrongly fixed
        }
    }

    /// Observation order does not matter: shuffled input produces the same
    /// detection as sorted input.
    #[test]
    fn detection_is_order_invariant(
        cycle in 100.0f64..400.0,
        n in 4usize..15,
        seed in 0u64..100,
    ) {
        use rand::seq::SliceRandom;
        let times: Vec<f64> = (0..n).map(|i| i as f64 * cycle).collect();
        let mut shuffled = times.clone();
        shuffled.shuffle(&mut etrain_trace::rng::seeded(seed));

        let mut sorted_det = CycleDetector::new();
        let mut shuffled_det = CycleDetector::new();
        for &t in &times {
            sorted_det.observe(t);
        }
        for &t in &shuffled {
            shuffled_det.observe(t);
        }
        prop_assert_eq!(sorted_det.detect(), shuffled_det.detect());
    }
}

proptest! {
    /// The two independent estimators — median-gap detection and epoch
    /// folding — agree on fixed cycles under bounded jitter.
    #[test]
    fn median_and_folding_estimators_agree(
        cycle in 60.0f64..900.0,
        phase in 0.0f64..100.0,
        seed in 0u64..300,
        n in 6usize..25,
    ) {
        use rand::Rng;
        let jitter = cycle * 0.01;
        let mut rng = etrain_trace::rng::seeded(seed);
        let times: Vec<f64> = (0..n)
            .map(|i| phase + i as f64 * cycle + rng.gen_range(-jitter..=jitter))
            .collect();

        let mut detector = CycleDetector::new();
        for &t in &times {
            detector.observe(t);
        }
        let median = match detector.detect() {
            DetectedPattern::Fixed { cycle_s, .. } => cycle_s,
            other => return Err(TestCaseError::fail(format!("median detector: {other:?}"))),
        };
        let folded = etrain_hb::estimate_period(&times)
            .ok_or_else(|| TestCaseError::fail("folding found no period"))?;
        prop_assert!(
            (median - folded).abs() <= cycle * 0.03,
            "median {median} vs folded {folded} (true {cycle})"
        );
    }
}
