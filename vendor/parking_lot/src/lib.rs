//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides the subset of the API this workspace uses — non-poisoning
//! `Mutex` and `RwLock` built on their `std::sync` counterparts. A
//! poisoned std lock is recovered transparently (`parking_lot` has no
//! poisoning, so neither does this shim).

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock without lock poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
