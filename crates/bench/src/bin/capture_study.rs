//! Reproduction binary for experiment `capture_study` — see DESIGN.md for
//! the paper artifact it regenerates. Pass `--quick` for a fast smoke run.

fn main() {
    etrain_bench::run_binary("capture_study");
}
