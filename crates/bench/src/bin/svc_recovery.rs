//! Infrastructure: durable-service crash recovery — in-process
//! drop/reopen trials, the WAL corruption self-test, and (when the
//! daemon binary is built) process-level SIGKILL supervision. See
//! `experiments::svc_recovery`.

fn main() {
    etrain_bench::run_binary("svc_recovery");
}
