//! Integration tests of the threaded eTrain runtime: registration →
//! request → heartbeat → broadcast decision → (simulated) transmission.

use std::time::Duration;

use etrain::apps::{replay, CargoAppModel};
use etrain::core::{CoreConfig, ETrainSystem, SystemConfig, TransmitRequest};
use etrain::sched::{AppProfile, CostProfile};
use etrain::trace::heartbeats::TrainAppSpec;
use etrain::trace::user::{generate_app_use, Activeness};

fn fast_system(theta: f64) -> ETrainSystem {
    ETrainSystem::start(SystemConfig {
        core: CoreConfig {
            theta,
            k: None,
            slot_s: 1.0,
            startup_grace_s: 600.0,
        },
        time_scale: 2000.0,
    })
}

#[test]
fn multiple_cargo_apps_ride_one_train() {
    let system = fast_system(1e6);
    let train = system.train_handle("QQ");
    let mail = system.cargo_client(AppProfile::new("Mail", CostProfile::mail(300.0)));
    let weibo = system.cargo_client(AppProfile::new("Weibo", CostProfile::weibo(120.0)));
    let cloud = system.cargo_client(AppProfile::new("Cloud", CostProfile::cloud(600.0)));

    mail.submit(TransmitRequest::upload(5_000)).unwrap();
    weibo.submit(TransmitRequest::upload(2_000)).unwrap();
    cloud.submit(TransmitRequest::download(100_000)).unwrap();
    train.heartbeat().unwrap();

    for client in [&mail, &weibo, &cloud] {
        let decision = client
            .next_decision(Duration::from_secs(3))
            .expect("all three apps ride the same heartbeat");
        assert_eq!(decision.piggybacked_on, Some(train.id()));
        assert_eq!(decision.app, client.id());
    }
    system.shutdown();
}

#[test]
fn decisions_keep_flowing_across_heartbeats() {
    let system = fast_system(1e6);
    let train = system.train_handle("WeChat");
    let client = system.cargo_client(AppProfile::new("Weibo", CostProfile::weibo(120.0)));

    for round in 0..3 {
        client.submit(TransmitRequest::upload(1_000 + round)).unwrap();
        train.heartbeat().unwrap();
        let decision = client
            .next_decision(Duration::from_secs(3))
            .unwrap_or_else(|| panic!("round {round} decision missing"));
        assert_eq!(decision.size_bytes, 1_000 + round);
    }
    system.shutdown();
}

#[test]
fn shutdown_is_idempotent_and_clean() {
    let system = fast_system(0.2);
    let client = system.cargo_client(AppProfile::new("Mail", CostProfile::mail(300.0)));
    client.submit(TransmitRequest::upload(10)).unwrap();
    system.shutdown();
    // Dropping a second system (already shut down) must not hang: Drop
    // re-runs stop_and_join harmlessly — covered by shutdown() consuming
    // self; nothing further to call here.
}

#[test]
fn replay_pipeline_through_live_core_matches_counts() {
    // The apps-crate replay drives the same deterministic core the
    // threaded system wraps; verify the full pipeline on a real trace.
    let trace = generate_app_use(3, Activeness::Active, 21).normalized_to(600.0);
    let outcome = replay::replay_through_core(
        &trace,
        &CargoAppModel::weibo().with_deadline(30.0),
        &TrainAppSpec::paper_trio(),
        CoreConfig {
            theta: 20.0,
            k: Some(20),
            slot_s: 1.0,
            startup_grace_s: 600.0,
        },
    );
    assert_eq!(outcome.undelivered, 0);
    assert_eq!(outcome.decisions.len(), trace.upload_count());
    // Decisions must respect causality.
    for d in &outcome.decisions {
        assert!(d.delay_s() >= 0.0);
    }
    // Deep batching: a large share rides heartbeats at Θ = 20.
    assert!(outcome.piggyback_ratio > 0.3, "{}", outcome.piggyback_ratio);
}
