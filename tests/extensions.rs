//! Integration tests for the extension features: capture analysis, file
//! chunking, live energy metering, replication, diurnal workloads, and
//! raw engine output.

use etrain::apps::FileSync;
use etrain::core::{CoreConfig, ETrainCore, EnergyMeter, TransmitRequest};
use etrain::hb::{identify_heartbeat_flows, IdentifyConfig};
use etrain::radio::{Battery, RadioParams};
use etrain::sched::{AppProfile, CostProfile};
use etrain::sim::{replicate, BandwidthSource, Scenario, SchedulerKind};
use etrain::trace::capture::{synthesize_capture, CaptureConfig};
use etrain::trace::diurnal::{generate_diurnal, DiurnalProfile, DAY_S};
use etrain::trace::packets::CargoWorkload;

#[test]
fn capture_pipeline_recovers_table1_from_raw_packets() {
    let capture = synthesize_capture(&CaptureConfig::default(), 77);
    let flows = identify_heartbeat_flows(&capture, &IdentifyConfig::default());
    let mut cycles: Vec<f64> = flows.iter().map(|f| f.cycle_s.round()).collect();
    cycles.sort_by(f64::total_cmp);
    assert_eq!(cycles, vec![240.0, 270.0, 300.0]);
}

#[test]
fn chunked_file_sync_piggybacks_across_trains_and_meters_savings() {
    // Drive a chunked 400 kB sync through the deterministic core while an
    // energy meter watches, and verify the meter reports real savings.
    let mut core = ETrainCore::new(CoreConfig {
        theta: 1e9,
        k: None,
        slot_s: 1.0,
        startup_grace_s: 600.0,
        ..CoreConfig::default()
    });
    let train = core.register_train("QQ");
    let cloud = core.register_cargo(AppProfile::new("Cloud", CostProfile::cloud(600.0)));
    let mut meter = EnergyMeter::new(RadioParams::galaxy_s4_3g(), 450_000.0);

    core.on_heartbeat(train, 0.0).unwrap();
    meter.record_heartbeat(0.0, 378);

    let sync = FileSync::new(400_000, 100_000);
    for (i, size) in sync.chunk_sizes().into_iter().enumerate() {
        core.submit(cloud, TransmitRequest::upload(size), 10.0 + i as f64)
            .unwrap();
    }
    for t in [300.0, 600.0] {
        let decisions = core.on_heartbeat(train, t).unwrap();
        meter.record_heartbeat(t, 378);
        for d in &decisions {
            meter.record_decision(d);
        }
    }
    assert_eq!(
        core.pending_requests(),
        0,
        "k = ∞ drains on the first train"
    );
    assert_eq!(meter.decisions(), 4);
    assert_eq!(meter.piggyback_ratio(), 1.0);
    // The four chunks were submitted one second apart, so the baseline
    // merges them into a single busy period with one tail — the saving is
    // that one avoided tail, minus the partial tail the cluster reuses
    // from the heartbeat at t = 0 (≈ 9 J net).
    assert!(
        meter.saved_j(900.0) > 0.8 * RadioParams::galaxy_s4_3g().full_tail_energy_j(),
        "saved {}",
        meter.saved_j(900.0)
    );
}

#[test]
fn replication_narrows_the_comparison() {
    let seeds: Vec<u64> = (0..4).collect();
    let baseline = replicate(
        &Scenario::paper_default()
            .duration_secs(1200)
            .scheduler(SchedulerKind::Baseline),
        &seeds,
    );
    let etrain = replicate(
        &Scenario::paper_default()
            .duration_secs(1200)
            .scheduler(SchedulerKind::ETrain {
                theta: 2.0,
                k: None,
            }),
        &seeds,
    );
    // The gap must exceed the combined spread — a statistically meaningful
    // win, not a lucky seed.
    let gap = baseline.extra_energy_j.mean - etrain.extra_energy_j.mean;
    assert!(gap > baseline.extra_energy_j.std_dev + etrain.extra_energy_j.std_dev);
}

#[test]
fn diurnal_day_simulation_is_consistent() {
    let packets = generate_diurnal(
        &CargoWorkload::paper_default(0.02),
        DiurnalProfile::evening_heavy(),
        0.0,
        DAY_S,
        3,
    );
    let generated = packets.len();
    let report = Scenario::paper_default()
        .duration_secs(DAY_S as u64)
        .packets(packets)
        .bandwidth(BandwidthSource::Constant(500_000.0))
        .scheduler(SchedulerKind::ETrain {
            theta: 2.0,
            k: None,
        })
        .seed(3)
        .run();
    assert_eq!(
        report.packets_completed + report.packets_unfinished,
        generated
    );
    // A full day of 3 IM apps: ~970 heartbeats.
    assert!(report.heartbeats_sent > 900);
}

#[test]
fn raw_output_exposes_a_power_monitor_view() {
    let (report, output) = Scenario::paper_default()
        .duration_secs(900)
        .bandwidth(BandwidthSource::Constant(500_000.0))
        .scheduler(SchedulerKind::ETrain {
            theta: 1.0,
            k: None,
        })
        .seed(5)
        .run_with_output();
    // The sampled power trace integrates to the reported energy.
    let trace = output.power_trace(0.1);
    let sampled_extra = trace.energy_above_j(RadioParams::galaxy_s4_3g().idle_mw());
    assert!(
        (sampled_extra - report.extra_energy_j).abs() / report.extra_energy_j < 0.02,
        "sampled {sampled_extra} vs reported {}",
        report.extra_energy_j
    );
    // And the battery framing is available for any report.
    let battery = Battery::paper_reference();
    assert!(battery.fraction_of_capacity(report.extra_energy_j) < 1.0);
}
