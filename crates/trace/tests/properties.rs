//! Property tests for the trace substrates: generator statistics, sorted
//! outputs, IO round-trips.

use etrain_trace::bandwidth::{generate_regimes, BandwidthTrace, RegimeSpec};
use etrain_trace::heartbeats::{synthesize, CyclePattern, TrainAppSpec};
use etrain_trace::io;
use etrain_trace::packets::{CargoAppSpec, CargoWorkload};
use etrain_trace::rng::TruncatedNormal;
use proptest::prelude::*;

proptest! {
    /// Any workload's generated trace is sorted, densely numbered, within
    /// the horizon, and respects per-app size minimums.
    #[test]
    fn packet_traces_are_well_formed(
        interarrivals in prop::collection::vec(5.0f64..500.0, 1..5),
        horizon in 100.0f64..5000.0,
        seed in 0u64..500,
    ) {
        let workload = CargoWorkload::new(
            interarrivals.iter().enumerate().map(|(i, &gap)| {
                CargoAppSpec::new(
                    format!("a{i}"),
                    gap,
                    TruncatedNormal::from_mean_min(10_000.0, 1_000.0),
                )
            }).collect(),
        );
        let packets = workload.generate(horizon, seed);
        for w in packets.windows(2) {
            prop_assert!(w[0].arrival_s <= w[1].arrival_s);
        }
        for (i, p) in packets.iter().enumerate() {
            prop_assert_eq!(p.id, i as u64);
            prop_assert!(p.arrival_s >= 0.0 && p.arrival_s < horizon);
            prop_assert!(p.size_bytes >= 1_000);
            prop_assert!(p.app.index() < interarrivals.len());
        }
    }

    /// Heartbeat synthesis emits each app's count within one beat of the
    /// ideal `horizon / cycle` for fixed cycles.
    #[test]
    fn heartbeat_counts_match_cycles(
        cycle in 60.0f64..900.0,
        phase in 0.0f64..60.0,
        horizon in 1000.0f64..20_000.0,
    ) {
        let spec = TrainAppSpec::fixed("t", cycle, 100, phase);
        let beats = synthesize(&[spec], horizon, 1);
        let ideal = ((horizon - phase) / cycle).ceil() as usize;
        prop_assert!(beats.len() == ideal || beats.len() + 1 == ideal,
            "got {} beats, ideal {}", beats.len(), ideal);
        for w in beats.windows(2) {
            prop_assert!((w[1].time_s - w[0].time_s - cycle).abs() < 1e-9);
        }
    }

    /// Doubling patterns always produce non-decreasing gaps bounded by
    /// `max_s`.
    #[test]
    fn doubling_gaps_monotone_and_capped(
        initial in 10.0f64..120.0,
        beats in 2u32..10,
        factor_levels in 1u32..6,
    ) {
        let max_s = initial * 2f64.powi(factor_levels as i32);
        let pattern = CyclePattern::Doubling {
            initial_s: initial,
            beats_per_level: beats,
            max_s,
        };
        let times = pattern.departure_times(0.0, initial * 500.0);
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        for w in gaps.windows(2) {
            prop_assert!(w[1] + 1e-9 >= w[0], "gaps decreased");
        }
        for g in gaps {
            prop_assert!(g <= max_s + 1e-9);
        }
    }

    /// Bandwidth generation: requested duration honored, all samples at or
    /// above the fade floor, and transfer time inversely bounded by min/max
    /// bandwidth.
    #[test]
    fn bandwidth_traces_are_physical(
        duration in 60.0f64..2000.0,
        median in 50_000.0f64..2_000_000.0,
        sigma in 0.05f64..1.0,
        ar in 0.0f64..0.99,
        seed in 0u64..500,
        size in 1_000u64..1_000_000,
    ) {
        let trace = generate_regimes(&[RegimeSpec {
            duration_s: duration,
            median_bps: median,
            sigma_log: sigma,
            ar_coeff: ar,
        }], seed);
        prop_assert_eq!(trace.len(), duration.round() as usize);
        prop_assert!(trace.min_bps() >= 8_000.0);

        let t = trace.transfer_time_s(0.0, size);
        let bits = size as f64 * 8.0;
        prop_assert!(t >= bits / trace.max_bps() - 1e-6);
        prop_assert!(t <= bits / trace.min_bps() + 1e-6);
    }

    /// CSV round-trips are lossless for all four trace kinds.
    #[test]
    fn csv_roundtrips(seed in 0u64..200) {
        let packets = CargoWorkload::paper_default(0.08).generate(600.0, seed);
        let mut buf = Vec::new();
        io::write_packets_csv(&packets, &mut buf).unwrap();
        prop_assert_eq!(io::read_packets_csv(buf.as_slice()).unwrap(), packets);

        let beats = synthesize(&TrainAppSpec::paper_trio(), 900.0, seed);
        let mut buf = Vec::new();
        io::write_heartbeats_csv(&beats, &mut buf).unwrap();
        prop_assert_eq!(io::read_heartbeats_csv(buf.as_slice()).unwrap(), beats);
    }

    /// `transfer_time_s` is additive: sending `a + b` bytes takes exactly
    /// as long as sending `a`, then `b` from where that left off.
    #[test]
    fn transfer_time_is_additive(
        a in 1_000u64..500_000,
        b in 1_000u64..500_000,
        start in 0.0f64..100.0,
        seed in 0u64..100,
    ) {
        let trace = generate_regimes(&[RegimeSpec {
            duration_s: 500.0,
            median_bps: 400_000.0,
            sigma_log: 0.5,
            ar_coeff: 0.9,
        }], seed);
        let whole = trace.transfer_time_s(start, a + b);
        let first = trace.transfer_time_s(start, a);
        let second = trace.transfer_time_s(start + first, b);
        prop_assert!((whole - (first + second)).abs() < 1e-6,
            "whole {whole} vs split {}", first + second);
    }
}

#[test]
fn constant_trace_transfer_time_is_exact() {
    let trace = BandwidthTrace::constant(1_000_000.0);
    // 125 kB at 1 Mbps = 1 s.
    assert!((trace.transfer_time_s(3.0, 125_000) - 1.0).abs() < 1e-9);
}
