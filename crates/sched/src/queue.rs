//! Per-app waiting queues and instantaneous-cost bookkeeping.

use std::collections::VecDeque;

use etrain_trace::packets::Packet;
use etrain_trace::CargoAppId;
use serde::{Deserialize, Serialize};

use crate::api::SchedulerError;
use crate::cost::CostProfile;

/// The registration profile of a cargo app: its name and delay-cost
/// function (the paper's "cargo app's profile, which is obtained when the
/// cargo app registers for eTrain's services", Sec. V-3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Human-readable app name.
    pub name: String,
    /// The app's delay-cost profile `φ`.
    pub cost: CostProfile,
}

impl AppProfile {
    /// Creates a profile.
    pub fn new(name: impl Into<String>, cost: CostProfile) -> Self {
        AppProfile {
            name: name.into(),
            cost,
        }
    }

    /// The paper's three cargo apps with their evaluation profiles:
    /// Mail f1, Weibo f2, Cloud f3, all sharing `deadline_s` (used by the
    /// deadline-sweep experiments, Fig. 10(c)).
    pub fn paper_trio(deadline_s: f64) -> Vec<AppProfile> {
        vec![
            AppProfile::new("Mail", CostProfile::mail(deadline_s)),
            AppProfile::new("Weibo", CostProfile::weibo(deadline_s)),
            AppProfile::new("Cloud", CostProfile::cloud(deadline_s)),
        ]
    }

    /// The simulation defaults: per-app deadlines reflecting each app's
    /// delay tolerance (e-mail 300 s, microblog posts 120 s, cloud sync
    /// 600 s — the paper's premise is that these apps tolerate
    /// minutes-scale deferral). The paper does not publish its simulation
    /// deadlines; these values put the Θ-sweep delay range in the paper's
    /// reported 18–70 s band (see EXPERIMENTS.md).
    pub fn paper_defaults() -> Vec<AppProfile> {
        vec![
            AppProfile::new("Mail", CostProfile::mail(300.0)),
            AppProfile::new("Weibo", CostProfile::weibo(120.0)),
            AppProfile::new("Cloud", CostProfile::cloud(600.0)),
        ]
    }
}

/// The set of per-app waiting queues `Q_i` of paper Sec. IV, with the cost
/// evaluations `P_i(t)`, `P(t)` and the speculative cost `φ_u(t)` used by
/// the Lyapunov schedulers.
#[derive(Debug, Clone)]
pub struct WaitingQueues {
    profiles: Vec<AppProfile>,
    queues: Vec<VecDeque<Packet>>,
    /// Cached Σ_i |Q_i|, maintained on every mutation so the per-slot
    /// `len`/`is_empty` probes (engine fingerprints, quiescence
    /// certificates) are O(1) instead of O(apps).
    cached_len: usize,
    /// Cached Σ queued bytes, maintained alongside [`WaitingQueues::cached_len`].
    cached_bytes: u64,
}

impl WaitingQueues {
    /// Creates empty queues for the given app profiles; app `i`'s queue is
    /// `Q_i`.
    pub fn new(profiles: Vec<AppProfile>) -> Self {
        let queues = profiles.iter().map(|_| VecDeque::new()).collect();
        WaitingQueues {
            profiles,
            queues,
            cached_len: 0,
            cached_bytes: 0,
        }
    }

    /// The registered app profiles.
    pub fn profiles(&self) -> &[AppProfile] {
        &self.profiles
    }

    /// Number of registered apps.
    pub fn app_count(&self) -> usize {
        self.profiles.len()
    }

    /// Enqueues an arriving packet into its app's queue.
    ///
    /// # Errors
    ///
    /// Returns [`SchedulerError::UnknownApp`] if the packet's app id was
    /// never registered.
    pub fn push(&mut self, packet: Packet) -> Result<(), SchedulerError> {
        let idx = packet.app.index();
        let queue = self
            .queues
            .get_mut(idx)
            .ok_or(SchedulerError::UnknownApp { app: packet.app })?;
        queue.push_back(packet);
        self.cached_len += 1;
        self.cached_bytes += packet.size_bytes;
        Ok(())
    }

    /// Total queued packets across all apps (O(1): cached counter).
    pub fn len(&self) -> usize {
        self.cached_len
    }

    /// Whether all queues are empty (O(1): cached counter).
    pub fn is_empty(&self) -> bool {
        self.cached_len == 0
    }

    /// Total queued bytes across all apps (O(1): cached counter).
    pub fn total_bytes(&self) -> u64 {
        self.cached_bytes
    }

    /// Recounts the queued packets from scratch, ignoring the cached
    /// counter. Retained as the from-scratch reference for the cached
    /// `len` (equivalence tests, `ETRAIN_REFERENCE_COST=1` decision path).
    pub fn recount_len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Recounts the queued bytes from scratch, ignoring the cached
    /// counter (see [`WaitingQueues::recount_len`]).
    pub fn recount_bytes(&self) -> u64 {
        self.queues
            .iter()
            .flat_map(|q| q.iter())
            .map(|p| p.size_bytes)
            .sum()
    }

    /// Packets pending for app `i`.
    pub fn app_queue(&self, app: CargoAppId) -> &VecDeque<Packet> {
        &self.queues[app.index()]
    }

    /// Iterates over all pending packets with their app profiles.
    pub fn iter(&self) -> impl Iterator<Item = (&AppProfile, &Packet)> {
        self.profiles
            .iter()
            .zip(&self.queues)
            .flat_map(|(profile, queue)| queue.iter().map(move |p| (profile, p)))
    }

    /// The instantaneous cost of app `i`:
    /// `P_i(t) = Σ_{u ∈ Q_i} φ_u(t − t_a(u))`.
    pub fn app_cost(&self, app: CargoAppId, now_s: f64) -> f64 {
        let profile = &self.profiles[app.index()];
        self.queues[app.index()]
            .iter()
            .map(|p| profile.cost.cost(now_s - p.arrival_s))
            .sum()
    }

    /// The total instantaneous cost `P(t) = Σ_i P_i(t)` (paper Eq. 6).
    pub fn total_cost(&self, now_s: f64) -> f64 {
        (0..self.profiles.len())
            .map(|i| self.app_cost(CargoAppId(i), now_s))
            .sum()
    }

    /// Whether `P(t) ≥ theta`, with a partial-sum early exit.
    ///
    /// Exactly `!(self.total_cost(now_s) < theta)`, bit-for-bit: the
    /// partial sums follow the same nested per-app accumulation order as
    /// [`WaitingQueues::total_cost`], delay costs are non-negative so the
    /// float prefix sums are monotone non-decreasing (rounding is
    /// monotone), and every comparison is the negation of the reference
    /// `< theta` test — a prefix crossing Θ certifies the full sum does
    /// too, and an uninterrupted scan reproduces the reference total.
    // The negated `<` is the contract: the Θ gate defers only while
    // `cost < theta`, so a NaN on either side must read as a breach —
    // `>=` would silently flip that.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn total_cost_breaches(&self, now_s: f64, theta: f64) -> bool {
        let mut total = 0.0f64;
        for (profile, queue) in self.profiles.iter().zip(&self.queues) {
            let mut app_sum = 0.0f64;
            for p in queue {
                app_sum += profile.cost.cost(now_s - p.arrival_s);
                if !(total + app_sum < theta) {
                    return true;
                }
            }
            total += app_sum;
            if !(total < theta) {
                return true;
            }
        }
        !(total < theta)
    }

    /// The speculative cost of a pending packet: its cost one slot from now
    /// if it is *not* selected, `φ_u(t + slot − t_a(u))` (paper's
    /// `ϕ_u(t)` with a configurable slot length).
    pub fn speculative_cost(&self, packet: &Packet, now_s: f64, slot_s: f64) -> f64 {
        let profile = &self.profiles[packet.app.index()];
        profile.cost.cost(now_s + slot_s - packet.arrival_s)
    }

    /// The per-app speculative backlog
    /// `P̄_i(t) = Σ_{u ∈ Q_i} ϕ_u(t)` used by the drift objective.
    pub fn speculative_backlog(&self, app: CargoAppId, now_s: f64, slot_s: f64) -> f64 {
        self.queues[app.index()]
            .iter()
            .map(|p| self.speculative_cost(p, now_s, slot_s))
            .sum()
    }

    /// Removes and returns the specific packet (by id) from app `app`'s
    /// queue, or `None` if it is not pending.
    pub fn remove(&mut self, app: CargoAppId, packet_id: u64) -> Option<Packet> {
        let queue = self.queues.get_mut(app.index())?;
        let pos = queue.iter().position(|p| p.id == packet_id)?;
        let removed = queue.remove(pos);
        if let Some(packet) = &removed {
            self.cached_len -= 1;
            self.cached_bytes -= packet.size_bytes;
        }
        removed
    }

    /// Drains every pending packet, in arrival order across apps.
    pub fn drain_all(&mut self) -> Vec<Packet> {
        let mut out: Vec<Packet> = self.queues.iter_mut().flat_map(|q| q.drain(..)).collect();
        out.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id)));
        self.cached_len = 0;
        self.cached_bytes = 0;
        out
    }

    /// Removes and returns the oldest pending packet (earliest arrival,
    /// ties broken by packet id), or `None` when every queue is empty.
    /// Used by the force-flush-oldest shed policy.
    pub fn pop_oldest(&mut self) -> Option<Packet> {
        let victim = self
            .queues
            .iter()
            .flat_map(|q| q.iter())
            .copied()
            .min_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id)))?;
        self.remove(victim.app, victim.id)
    }

    /// [`WaitingQueues::pop_oldest`] restricted to one app's queue: when
    /// the *per-app* capacity is the bound that tripped, the victim must
    /// come from the violating app or the bound would not be restored.
    pub fn pop_oldest_in(&mut self, app: CargoAppId) -> Option<Packet> {
        let victim = self
            .queues
            .get(app.index())?
            .iter()
            .copied()
            .min_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id)))?;
        self.remove(victim.app, victim.id)
    }

    /// [`WaitingQueues::evict_lowest_value`] restricted to one app's queue
    /// (per-app capacity enforcement, like [`WaitingQueues::pop_oldest_in`]).
    pub fn evict_lowest_value_in(&mut self, app: CargoAppId, now_s: f64) -> Option<Packet> {
        let profile = self.profiles.get(app.index())?;
        let victim = self
            .queues
            .get(app.index())?
            .iter()
            .map(|p| (profile.cost.cost(now_s - p.arrival_s), *p))
            .min_by(|(ca, a), (cb, b)| {
                ca.total_cmp(cb)
                    .then(a.arrival_s.total_cmp(&b.arrival_s))
                    .then(a.id.cmp(&b.id))
            })
            .map(|(_, p)| p)?;
        self.remove(victim.app, victim.id)
    }

    /// Removes and returns the pending packet with the lowest
    /// instantaneous delay cost `φ_u(t − t_a)` — the cheapest packet to
    /// lose (ties broken by arrival, then id). Used by the
    /// drop-lowest-value shed policy.
    pub fn evict_lowest_value(&mut self, now_s: f64) -> Option<Packet> {
        let victim = self
            .iter()
            .map(|(profile, p)| (profile.cost.cost(now_s - p.arrival_s), *p))
            .min_by(|(ca, a), (cb, b)| {
                ca.total_cmp(cb)
                    .then(a.arrival_s.total_cmp(&b.arrival_s))
                    .then(a.id.cmp(&b.id))
            })
            .map(|(_, p)| p)?;
        self.remove(victim.app, victim.id)
    }

    /// Drains the packets whose deadline would be violated by waiting one
    /// more slot (used by deadline-aware schedulers).
    pub fn drain_deadline_critical(&mut self, now_s: f64, slot_s: f64) -> Vec<Packet> {
        let mut out = Vec::new();
        for (profile, queue) in self.profiles.iter().zip(&mut self.queues) {
            let deadline = profile.cost.deadline_s();
            let mut idx = 0;
            while idx < queue.len() {
                let p = queue[idx];
                if now_s + slot_s - p.arrival_s >= deadline {
                    let removed = queue.remove(idx).expect("index in bounds");
                    self.cached_len -= 1;
                    self.cached_bytes -= removed.size_bytes;
                    out.push(removed);
                } else {
                    idx += 1;
                }
            }
        }
        out.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(id: u64, app: usize, arrival_s: f64, size: u64) -> Packet {
        Packet {
            id,
            app: CargoAppId(app),
            arrival_s,
            size_bytes: size,
        }
    }

    fn queues() -> WaitingQueues {
        WaitingQueues::new(AppProfile::paper_trio(30.0))
    }

    #[test]
    fn push_and_count() {
        let mut q = queues();
        assert!(q.is_empty());
        q.push(packet(0, 0, 1.0, 100)).unwrap();
        q.push(packet(1, 2, 2.0, 200)).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_bytes(), 300);
        assert_eq!(q.app_queue(CargoAppId(0)).len(), 1);
        assert_eq!(q.app_queue(CargoAppId(1)).len(), 0);
    }

    #[test]
    fn unknown_app_rejected() {
        let mut q = queues();
        let err = q.push(packet(0, 9, 0.0, 1)).unwrap_err();
        assert!(matches!(err, SchedulerError::UnknownApp { app } if app == CargoAppId(9)));
    }

    #[test]
    fn costs_match_profiles() {
        let mut q = queues();
        // Weibo (f2, deadline 30): delay 15 → 0.5.
        q.push(packet(0, 1, 0.0, 100)).unwrap();
        assert!((q.app_cost(CargoAppId(1), 15.0) - 0.5).abs() < 1e-12);
        // Mail (f1): free before deadline.
        q.push(packet(1, 0, 0.0, 100)).unwrap();
        assert_eq!(q.app_cost(CargoAppId(0), 15.0), 0.0);
        assert!((q.total_cost(15.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn speculative_cost_looks_one_slot_ahead() {
        let q0 = queues();
        let p = packet(0, 1, 0.0, 100);
        // At t=29 with slot 1 s the Weibo packet would hit its deadline.
        assert!((q0.speculative_cost(&p, 29.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((q0.speculative_cost(&p, 30.0, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn speculative_backlog_sums_queue() {
        let mut q = queues();
        q.push(packet(0, 1, 0.0, 100)).unwrap();
        q.push(packet(1, 1, 10.0, 100)).unwrap();
        let expected = CostProfile::weibo(30.0).cost(16.0) + CostProfile::weibo(30.0).cost(6.0);
        assert!((q.speculative_backlog(CargoAppId(1), 15.0, 1.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn remove_specific_packet() {
        let mut q = queues();
        q.push(packet(0, 0, 1.0, 100)).unwrap();
        q.push(packet(1, 0, 2.0, 100)).unwrap();
        let removed = q.remove(CargoAppId(0), 0).unwrap();
        assert_eq!(removed.id, 0);
        assert_eq!(q.len(), 1);
        assert!(q.remove(CargoAppId(0), 0).is_none());
        assert!(q.remove(CargoAppId(2), 5).is_none());
    }

    #[test]
    fn drain_all_orders_by_arrival() {
        let mut q = queues();
        q.push(packet(0, 0, 5.0, 100)).unwrap();
        q.push(packet(1, 2, 1.0, 100)).unwrap();
        q.push(packet(2, 1, 3.0, 100)).unwrap();
        let drained = q.drain_all();
        let ids: Vec<u64> = drained.iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![1, 2, 0]);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_deadline_critical_picks_only_expiring() {
        let mut q = queues();
        q.push(packet(0, 1, 0.0, 100)).unwrap(); // deadline at 30
        q.push(packet(1, 1, 20.0, 100)).unwrap(); // deadline at 50
        let critical = q.drain_deadline_critical(29.5, 1.0);
        assert_eq!(critical.len(), 1);
        assert_eq!(critical[0].id, 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_oldest_respects_arrival_then_id() {
        let mut q = queues();
        q.push(packet(5, 0, 3.0, 100)).unwrap();
        q.push(packet(1, 2, 3.0, 100)).unwrap();
        q.push(packet(9, 1, 1.0, 100)).unwrap();
        assert_eq!(q.pop_oldest().unwrap().id, 9);
        assert_eq!(q.pop_oldest().unwrap().id, 1, "tie broken by id");
        assert_eq!(q.pop_oldest().unwrap().id, 5);
        assert!(q.pop_oldest().is_none());
    }

    #[test]
    fn evict_lowest_value_drops_cheapest_cost() {
        let mut q = queues();
        // At t=20: Mail (f1) is free before its 30 s deadline (cost 0),
        // Weibo (f2) at age 15 costs 0.5 — Mail is the cheapest to lose.
        q.push(packet(0, 1, 5.0, 100)).unwrap();
        q.push(packet(1, 0, 5.0, 100)).unwrap();
        let victim = q.evict_lowest_value(20.0).unwrap();
        assert_eq!(victim.id, 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.evict_lowest_value(20.0).unwrap().id, 0);
        assert!(q.evict_lowest_value(20.0).is_none());
    }

    #[test]
    fn cached_counters_match_recount_across_mutations() {
        let mut q = queues();
        let check = |q: &WaitingQueues| {
            assert_eq!(q.len(), q.recount_len());
            assert_eq!(q.total_bytes(), q.recount_bytes());
            assert_eq!(q.is_empty(), q.recount_len() == 0);
        };
        for i in 0..30u64 {
            q.push(packet(i, (i % 3) as usize, i as f64 * 0.7, 100 + i))
                .unwrap();
            check(&q);
        }
        // Every mutation path must keep the counters in sync.
        q.remove(CargoAppId(1), 1).unwrap();
        check(&q);
        assert!(q.remove(CargoAppId(1), 999).is_none());
        check(&q);
        q.pop_oldest().unwrap();
        check(&q);
        q.pop_oldest_in(CargoAppId(2)).unwrap();
        check(&q);
        q.evict_lowest_value(40.0).unwrap();
        check(&q);
        q.evict_lowest_value_in(CargoAppId(0), 40.0).unwrap();
        check(&q);
        let critical = q.drain_deadline_critical(35.0, 1.0);
        assert!(!critical.is_empty());
        check(&q);
        q.drain_all();
        check(&q);
        assert!(q.is_empty());
    }

    #[test]
    fn iter_pairs_profiles_with_packets() {
        let mut q = queues();
        q.push(packet(0, 2, 0.0, 100)).unwrap();
        let pairs: Vec<_> = q.iter().collect();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0.name, "Cloud");
    }
}
