//! Extension: the Θ × λ sensitivity grid.
//!
//! Fig. 7(a) sweeps Θ at one arrival rate and Fig. 8(b) sweeps λ at one
//! (matched) delay; this extension crosses the two, printing the energy
//! saving vs the baseline for every (Θ, λ) cell. It answers the deployment
//! question the paper leaves implicit: does one Θ work across traffic
//! intensities, or must Θ track the load? (Finding: the saving surface is
//! monotone in Θ at every λ, so a single conservative Θ is safe — the
//! knob's effect weakens but never inverts as traffic grows.)

use crate::ExperimentResult;
use etrain_sim::{RunGrid, RunSpec, SchedulerKind, Table};

use super::{paper_base, pct};

/// Runs the Θ × λ grid.
pub fn run(quick: bool) -> ExperimentResult {
    let base = paper_base(quick);
    let thetas: &[f64] = if quick {
        &[0.5, 2.0, 8.0]
    } else {
        &[0.5, 1.0, 2.0, 4.0, 8.0]
    };
    let lambdas: &[f64] = if quick {
        &[0.04, 0.12]
    } else {
        &[0.04, 0.06, 0.08, 0.10, 0.12]
    };

    let mut headers = vec!["theta".to_owned()];
    headers.extend(lambdas.iter().map(|l| format!("saving@λ={l:.2}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Extension — energy saving vs baseline over the Θ × λ grid",
        &header_refs,
    );

    // One grid: |λ| baseline cells first, then the Θ × λ eTrain cells.
    // All cells at one λ share a single trace synthesis in the grid's
    // cache (the scheduler knob is not part of the trace key).
    let mut grid = RunGrid::new();
    for &lambda in lambdas {
        grid.push(RunSpec::new(
            format!("baseline λ={lambda}"),
            base.clone()
                .lambda(lambda)
                .scheduler(SchedulerKind::Baseline),
        ));
    }
    for &theta in thetas {
        for &lambda in lambdas {
            grid.push(RunSpec::new(
                format!("Θ={theta} λ={lambda}"),
                base.clone()
                    .lambda(lambda)
                    .scheduler(SchedulerKind::ETrain { theta, k: None }),
            ));
        }
    }
    let reports = grid.run();
    let (baselines, cells) = reports.split_at(lambdas.len());

    for (t, &theta) in thetas.iter().enumerate() {
        let mut row = vec![format!("{theta:.1}")];
        for (i, baseline) in baselines.iter().enumerate() {
            let report = &cells[t * lambdas.len() + i];
            row.push(pct(1.0 - report.extra_energy_j / baseline.extra_energy_j));
        }
        table.push_row_strings(row);
    }
    ExperimentResult::from_tables(vec![table]).headline_cell(
        "saving_theta_max_lambda_012",
        0,
        -1,
        "saving@λ=0.12",
        "%",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn savings_matrix(quick: bool) -> Vec<Vec<f64>> {
        run(quick).tables[0]
            .to_csv()
            .lines()
            .skip(1)
            .map(|row| {
                row.split(',')
                    .skip(1)
                    .map(|cell| cell.trim_end_matches('%').parse().unwrap())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn saving_is_monotone_in_theta_at_every_lambda() {
        let matrix = savings_matrix(true);
        for col in 0..matrix[0].len() {
            for row in 1..matrix.len() {
                assert!(
                    matrix[row][col] >= matrix[row - 1][col] - 2.0,
                    "saving inverted at col {col}: {:?}",
                    matrix.iter().map(|r| r[col]).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn every_cell_saves_energy() {
        for row in savings_matrix(true) {
            for cell in row {
                assert!(cell > 0.0, "negative saving {cell}");
            }
        }
    }
}
