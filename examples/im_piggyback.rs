//! The paper's Fig. 2 scenario, end to end: five 5 KB e-mails inside one
//! WeChat heartbeat cycle, scattered vs piggybacked, with the resulting
//! radio power trace rendered as ASCII.
//!
//! ```text
//! cargo run --release --example im_piggyback
//! ```

use etrain::radio::{RadioParams, RrcState, Timeline, Transmission};

fn main() {
    let params = RadioParams::galaxy_s4_3g();
    let bandwidth_bps = 450_000.0;
    let email_tx = 5_000.0 * 8.0 / bandwidth_bps;
    let hb_tx = 74.0 * 8.0 / bandwidth_bps;
    let horizon = 330.0;

    // Without eTrain: e-mails transmit the moment they are written.
    let mut scattered = vec![
        Transmission::new(0.0, hb_tx),
        Transmission::new(300.0, hb_tx),
    ];
    for i in 0..5 {
        scattered.push(Transmission::new(30.0 + 60.0 * i as f64, email_tx));
    }
    // With eTrain: all five defer and ride the second heartbeat's tail.
    let mut piggybacked = vec![
        Transmission::new(0.0, hb_tx),
        Transmission::new(300.0, hb_tx),
    ];
    for i in 0..5 {
        piggybacked.push(Transmission::new(
            300.0 + hb_tx + i as f64 * email_tx,
            email_tx,
        ));
    }

    let tl_scattered = Timeline::from_transmissions(&params, &scattered, horizon);
    let tl_piggybacked = Timeline::from_transmissions(&params, &piggybacked, horizon);

    println!("=== Fig. 2 toy example: five 5 KB e-mails in one heartbeat cycle ===\n");
    render("without eTrain (scattered)", &tl_scattered);
    render("with eTrain (piggybacked)", &tl_piggybacked);

    let e0 = tl_scattered.extra_energy_j();
    let e1 = tl_piggybacked.extra_energy_j();
    println!(
        "radio energy: {:.2} J -> {:.2} J  ({:.0} % saved)",
        e0,
        e1,
        (e0 - e1) / e0 * 100.0
    );
}

/// Draws the RRC state over time: one character per 2 seconds.
fn render(label: &str, timeline: &Timeline) {
    let mut line = String::new();
    let mut t = 0.0;
    while t < timeline.horizon_s() {
        line.push(match timeline.state_at(t) {
            RrcState::Dch => '#',
            RrcState::Fach => '+',
            RrcState::Idle => '.',
        });
        t += 2.0;
    }
    println!("{label:<30} |{line}|");
    println!(
        "{:<30}  DCH {:.0}s  FACH {:.0}s  IDLE {:.0}s\n",
        "",
        timeline.time_in_state_s(RrcState::Dch),
        timeline.time_in_state_s(RrcState::Fach),
        timeline.time_in_state_s(RrcState::Idle)
    );
}
