//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the `proptest!` test
//! macro, `prop_assert*`, `prop_oneof!`, `Just`, `prop_map`, tuple and
//! range strategies, `collection::vec`, and `bool::weighted`.
//!
//! Semantics differ from real proptest in two deliberate ways:
//! - **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) but is not minimised.
//! - **Deterministic seeding.** Each `proptest!` function derives its
//!   RNG seed from the test's name, so runs are reproducible without a
//!   failure-persistence file.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe: combinators carry `where Self: Sized` so
    /// `Box<dyn Strategy<Value = T>>` works (used by `prop_oneof!`).
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then draws from the strategy
        /// `f` builds from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (**self).gen_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).gen_value(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn gen_value(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.gen_value(rng)).gen_value(rng)
        }
    }

    /// Uniform choice between boxed alternative strategies
    /// (the expansion of `prop_oneof!`).
    pub struct OneOf<T> {
        choices: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        pub fn new(choices: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { choices }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.choices.len());
            self.choices[idx].gen_value(rng)
        }
    }

    /// Boxes a strategy for `prop_oneof!`, letting the element type be
    /// unified across arms instead of inferred per-cast.
    #[doc(hidden)]
    pub fn __box_strategy<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($( self.$idx.gen_value(rng), )+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    );
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A length specification for [`vec()`]: a fixed size or a half-open
    /// range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod bool {
    //! Strategies for booleans.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy yielding `true` with the given probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted(f64);

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "weighted: p = {p} out of [0, 1]");
        Weighted(p)
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(self.0)
        }
    }
}

pub mod test_runner {
    //! Test execution plumbing used by the `proptest!` macro.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property does not hold for the generated input.
        Fail(String),
        /// The input was rejected (counts as skipped, not failed).
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// The RNG handed to strategies. Seeded from the property's name so
    /// every run of the suite generates the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Derives a deterministic generator from a test name (FNV-1a).
        pub fn from_name(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(hash))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` namespace (`prop::collection::vec`, …).

        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions that run a property over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @config ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config ($config:expr);) => {};
    (@config ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err(__err) => {
                        panic!("property {} failed at case {}: {}",
                               stringify!($name), __case, __err);
                    }
                }
            }
        }
        $crate::__proptest_impl! { @config ($config); $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (not panicking) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(__l != __r, "assertion failed: `{:?}` != `{:?}`", __l, __r);
    }};
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::__box_strategy($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn named_rng_is_deterministic() {
        use crate::strategy::Strategy;
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let strat = 0.0f64..1.0;
        for _ in 0..32 {
            assert_eq!(strat.gen_value(&mut a), strat.gen_value(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn ranges_and_tuples(x in 1u64..10, (a, b) in (0.0f64..1.0, 5usize..9)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((5..9).contains(&b));
        }

        fn oneof_and_map(v in prop_oneof![
            Just(0usize),
            (1usize..4).prop_map(|n| n * 10),
        ]) {
            prop_assert!(v == 0 || (10..40).contains(&v));
        }

        fn vec_sizes(fixed in prop::collection::vec(0u32..5, 3),
                     ranged in prop::collection::vec(prop::bool::weighted(0.5), 1..6)) {
            prop_assert_eq!(fixed.len(), 3);
            prop_assert!((1..6).contains(&ranged.len()));
        }
    }
}
