//! Fig. 6: the delay-cost profile functions of the three cargo apps.
//!
//! f1 (Mail): 0 before the deadline, `d/deadline − 1` after.
//! f2 (Weibo): `d/deadline` before the deadline, constant 2 after.
//! f3 (Cloud): `d/deadline` before, `3·d/deadline − 2` after.

use crate::ExperimentResult;
use etrain_sched::CostProfile;
use etrain_sim::Table;

/// Runs the Fig. 6 reproduction: the three profiles over d ∈ [0, 3D] in
/// units of the deadline.
pub fn run(_quick: bool) -> ExperimentResult {
    let deadline = 60.0;
    let f1 = CostProfile::mail(deadline);
    let f2 = CostProfile::weibo(deadline);
    let f3 = CostProfile::cloud(deadline);

    let mut table = Table::new(
        "Fig. 6 — delay cost profiles (deadline = 60 s)",
        &["d_over_deadline", "f1_mail", "f2_weibo", "f3_cloud"],
    );
    for step in 0..=12 {
        let d = deadline * step as f64 / 4.0; // 0, D/4, ..., 3D
        table.push_row_strings(vec![
            format!("{:.2}", d / deadline),
            format!("{:.3}", f1.cost(d)),
            format!("{:.3}", f2.cost(d)),
            format!("{:.3}", f3.cost(d)),
        ]);
    }
    ExperimentResult::from_tables(vec![table]).headline_cell(
        "f3_at_3x_deadline",
        0,
        -1,
        "f3_cloud",
        "cost",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_values_at_landmarks() {
        let tables = run(false).tables;
        let rows: Vec<Vec<f64>> = tables[0]
            .to_csv()
            .lines()
            .skip(1)
            .map(|r| r.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        // At d = deadline (row 4): f1 = 0, f2 = 1, f3 = 1.
        assert_eq!(rows[4][1], 0.0);
        assert_eq!(rows[4][2], 1.0);
        assert_eq!(rows[4][3], 1.0);
        // At d = 2·deadline (row 8): f1 = 1, f2 = 2, f3 = 4.
        assert_eq!(rows[8][1], 1.0);
        assert_eq!(rows[8][2], 2.0);
        assert_eq!(rows[8][3], 4.0);
    }
}
