//! CI performance gate: compares a freshly produced `BENCH_repro.json`
//! against a committed baseline and fails (exit 1) when any experiment —
//! or the suite total — regressed past the allowed factor.
//!
//! ```text
//! cargo run -p etrain-bench --release --bin repro_all -- --quick --json fresh.json
//! cargo run -p etrain-bench --release --bin perf_gate -- \
//!     --baseline BENCH_repro.json --current fresh.json [--factor 2.0]
//! ```
//!
//! Baselines under the noise floor (50 ms) never trip the gate, and a
//! missing baseline file passes with a note — the first run on a fresh
//! checkout must not fail before a baseline exists.

/// Per-experiment baselines under this many seconds never trip the gate.
const FLOOR_S: f64 = 0.05;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{flag} needs a value"))
            .clone()
    })
}

fn main() {
    etrain_bench::validate_env_knobs();
    let args: Vec<String> = std::env::args().collect();
    let baseline_path =
        flag_value(&args, "--baseline").unwrap_or_else(|| "BENCH_repro.json".to_owned());
    let current_path =
        flag_value(&args, "--current").expect("--current <fresh BENCH_repro.json> is required");
    let factor: f64 = flag_value(&args, "--factor")
        .map(|v| v.parse().expect("--factor needs a number"))
        .unwrap_or(2.0);
    assert!(
        factor.is_finite() && factor > 0.0,
        "--factor must be positive"
    );

    let Ok(baseline_json) = std::fs::read_to_string(&baseline_path) else {
        println!("# perf_gate: no baseline at {baseline_path}; passing (first run)");
        return;
    };
    let current_json = std::fs::read_to_string(&current_path)
        .unwrap_or_else(|e| panic!("reading {current_path}: {e}"));

    let baseline = etrain_bench::load_experiment_walls(&baseline_json);
    let current = etrain_bench::load_experiment_walls(&current_json);
    assert!(
        !current.is_empty(),
        "{current_path} carries no experiment records — not a repro_all report?"
    );
    if baseline.is_empty() {
        println!("# perf_gate: baseline {baseline_path} has no experiment records; passing");
        return;
    }

    let base_total: f64 = baseline.iter().map(|e| e.wall_s).sum();
    let cur_total: f64 = current.iter().map(|e| e.wall_s).sum();
    println!(
        "# perf_gate: {} baseline vs {} current experiments; \
         totals {base_total:.2} s -> {cur_total:.2} s (allowed factor {factor})",
        baseline.len(),
        current.len()
    );
    let regressions = etrain_bench::perf_regressions(&baseline, &current, factor, FLOOR_S);
    if regressions.is_empty() {
        println!("# perf_gate: OK");
        return;
    }
    for r in &regressions {
        eprintln!(
            "error: {} regressed {:.3} s -> {:.3} s ({:.2}x, allowed {factor}x)",
            r.name,
            r.baseline_s,
            r.current_s,
            r.current_s / r.baseline_s
        );
    }
    std::process::exit(1);
}
