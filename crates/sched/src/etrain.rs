//! The eTrain online transmission strategy (paper Sec. IV, Algorithm 1).
//!
//! At every 1-second slot the scheduler evaluates the total instantaneous
//! delay cost `P(t)` of all waiting queues. If `P(t) ≥ Θ` **or** a heartbeat
//! departs at this slot, it opens a selection budget `K(t)` — `k` packets on
//! heartbeat slots (piggybacking on the tail the heartbeat is about to pay
//! for anyway), a single packet otherwise — and greedily picks the packets
//! that maximize the negative Lyapunov drift:
//!
//! ```text
//! max  Σ_i [ P̄_i(t) · Σ_{u∈Q*_i} ϕ_u(t)  −  (Σ_{u∈Q*_i} ϕ_u(t))² / 2 ]
//! ```
//!
//! The greedy step (paper Eq. 9) adds, per iteration, the packet `u` of app
//! `i` maximizing `(P̄_i(t) − Σ_{q∈Q*_i} ϕ_q(t)) · ϕ_u(t) − ϕ_u(t)²/2`.
//!
//! The paper's deployed configuration sets `k = ∞` ([`ETrainConfig::k`] =
//! `None`): on a heartbeat slot the whole backlog piggybacks.

use etrain_trace::packets::Packet;
use etrain_trace::CargoAppId;
use serde::{Deserialize, Serialize};

use crate::api::{Scheduler, SchedulerError, SlotContext};
use crate::queue::{AppProfile, WaitingQueues};

/// Environment variable selecting the retained from-scratch reference
/// decision path (`ETRAIN_REFERENCE_COST=1`): every scenario-built
/// scheduler then recomputes the Lyapunov/cost terms from scratch each
/// slot instead of using the cached hot path. The escape hatch for the
/// equivalence harness (DESIGN.md §17); both paths are bit-for-bit
/// interchangeable.
pub const REFERENCE_COST_ENV: &str = "ETRAIN_REFERENCE_COST";

fn parse_reference_cost(raw: &str) -> Result<bool, String> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "reference" => Ok(true),
        "0" | "false" | "off" | "cached" => Ok(false),
        other => Err(format!(
            "unrecognized {REFERENCE_COST_ENV} value {other:?} \
             (expected 1/true/on/reference or 0/false/off/cached)"
        )),
    }
}

/// Strict read of [`REFERENCE_COST_ENV`]: unset or empty means the cached
/// path, anything else must parse. Binaries fail fast on the `Err`.
///
/// # Errors
///
/// Returns a description of the unrecognized value.
pub fn try_reference_cost_from_env() -> Result<bool, String> {
    match std::env::var(REFERENCE_COST_ENV) {
        Err(_) => Ok(false),
        Ok(raw) if raw.trim().is_empty() => Ok(false),
        Ok(raw) => parse_reference_cost(&raw),
    }
}

/// Lenient read of [`REFERENCE_COST_ENV`] for library contexts: an
/// unrecognized value warns once on stderr and falls back to the cached
/// path.
pub fn reference_cost_from_env() -> bool {
    match try_reference_cost_from_env() {
        Ok(reference) => reference,
        Err(message) => {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!("warning: {message}; using the cached decision path");
            });
            false
        }
    }
}

/// Configuration of [`ETrainScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ETrainConfig {
    /// The delay-cost bound Θ: below it (and without a heartbeat) nothing
    /// is scheduled, letting cargo accumulate for the next train.
    pub theta: f64,
    /// Maximum packets piggybacked per heartbeat slot; `None` means the
    /// paper's deployed `k = ∞`.
    pub k: Option<usize>,
    /// Slot length in seconds (the paper uses 1 s).
    pub slot_s: f64,
}

impl Default for ETrainConfig {
    /// The paper's controlled-experiment defaults: Θ = 0.2, k = ∞, 1 s
    /// slots (Sec. VI-D-4).
    fn default() -> Self {
        ETrainConfig {
            theta: 0.2,
            k: None,
            slot_s: 1.0,
        }
    }
}

impl ETrainConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is negative/non-finite, `slot_s` is not strictly
    /// positive, or `k` is `Some(0)`.
    fn validate(&self) {
        assert!(
            self.theta.is_finite() && self.theta >= 0.0,
            "theta must be finite and non-negative"
        );
        assert!(self.slot_s > 0.0, "slot length must be positive");
        assert!(
            self.k != Some(0),
            "k must be at least 1 (or None for infinity)"
        );
    }
}

/// The eTrain scheduler: Algorithm 1 of the paper.
///
/// See the module-level documentation for the algorithm; see
/// [`ETrainConfig`] for tuning. Construction requires the registered cargo
/// app profiles, mirroring the Android implementation where apps register
/// their delay-cost profile with the eTrain service.
#[derive(Debug)]
pub struct ETrainScheduler {
    config: ETrainConfig,
    queues: WaitingQueues,
    /// Latched from the last slot's `trains_alive`: while `true` the
    /// scheduler is stopped (paper Sec. V-3) and arrivals pass straight
    /// through instead of waiting up to a full slot for the next drain.
    trains_dead: bool,
    /// Whether to buffer structured events for the journal (off by
    /// default — the zero-cost path allocates nothing).
    obs_enabled: bool,
    /// Buffered `(time_s, event)` pairs awaiting a driver drain.
    obs_events: Vec<(f64, etrain_obs::Event)>,
    /// When `true`, `on_slot` takes the retained from-scratch reference
    /// decision path instead of the cached one (the equivalence harness
    /// and the `hotpath_speedup` denominator; see [`REFERENCE_COST_ENV`]).
    reference_decisions: bool,
    /// Persistent scratch buffers for the cached greedy selection,
    /// reused across slots so steady-state decisions allocate nothing.
    scratch: SelectScratch,
}

/// Reusable selection-round storage. The cached values are valid for one
/// `select` call only (ϕ depends on `now_s`); the *capacity* is what
/// persists across slots.
#[derive(Debug, Default)]
struct SelectScratch {
    /// `P̄_i(t)` per app, rebuilt each round in the same per-queue
    /// accumulation order as `WaitingQueues::speculative_backlog`.
    p_bar: Vec<f64>,
    /// `Σ_{q ∈ Q*_i} ϕ_q(t)` per app, grown as packets are selected.
    selected_sum: Vec<f64>,
    /// `ϕ_u(t)` per candidate in candidate order — app ascending, queue
    /// position ascending — exactly the reference scan order. Kept as a
    /// bare lane (struct-of-arrays) so the greedy round streams 8-byte
    /// floats instead of a wide tuple stride.
    phi: Vec<f64>,
    /// One-past-the-end candidate index per app: app `i`'s candidates are
    /// `phi[app_end[i-1]..app_end[i]]` (from 0 for app 0). Replaces a
    /// per-candidate app lane and lets each greedy round hoist
    /// `P̄_i − Σϕ` out of the inner scan.
    app_end: Vec<usize>,
    /// Parallel to `phi`: the candidate's packet id (enough to remove it
    /// from the live queue on selection — the full `Packet` stays there).
    id: Vec<u64>,
    /// Parallel to `phi`: whether the packet was already selected (the
    /// reference path removes it from the live queue instead).
    taken: Vec<bool>,
}

impl ETrainScheduler {
    /// Creates a scheduler for the registered app profiles.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`ETrainConfig`]).
    pub fn new(config: ETrainConfig, profiles: Vec<AppProfile>) -> Self {
        config.validate();
        ETrainScheduler {
            config,
            queues: WaitingQueues::new(profiles),
            trains_dead: false,
            obs_enabled: false,
            obs_events: Vec::new(),
            reference_decisions: false,
            scratch: SelectScratch::default(),
        }
    }

    /// Buffers a [`PiggybackDecision`](etrain_obs::Event::PiggybackDecision)
    /// if event recording is on. `budget_k` follows the journal
    /// convention: `Some(0)` marks a pure deferral, `None` an unbounded
    /// burst.
    #[allow(clippy::too_many_arguments)]
    fn record_decision(
        &mut self,
        now_s: f64,
        total_cost: f64,
        heartbeat_departing: bool,
        queued: usize,
        queued_bytes: u64,
        budget_k: Option<usize>,
        released: usize,
    ) {
        if !self.obs_enabled || (queued == 0 && !heartbeat_departing) {
            return;
        }
        self.obs_events.push((
            now_s,
            etrain_obs::Event::PiggybackDecision {
                total_cost,
                theta: self.config.theta,
                heartbeat_departing,
                queued,
                queued_bytes,
                budget_k,
                released,
            },
        ));
    }

    /// The active configuration.
    pub fn config(&self) -> &ETrainConfig {
        &self.config
    }

    /// Overrides the piggyback burst limit `k` at run time. The degraded
    /// mode of [`GuardedScheduler`](crate::GuardedScheduler) uses this to
    /// halve the burst limit without rebuilding the queues.
    ///
    /// # Panics
    ///
    /// Panics on `Some(0)`.
    pub fn set_k(&mut self, k: Option<usize>) {
        assert!(k != Some(0), "k must be at least 1 (or None for infinity)");
        self.config.k = k;
    }

    /// The registered cargo app profiles.
    pub fn profiles(&self) -> &[AppProfile] {
        self.queues.profiles()
    }

    /// Whether the retained from-scratch reference decision path is
    /// active (see [`REFERENCE_COST_ENV`]).
    pub fn reference_decisions(&self) -> bool {
        self.reference_decisions
    }

    /// Packets currently deferred for one app.
    pub fn pending_for(&self, app: CargoAppId) -> usize {
        if app.index() < self.queues.app_count() {
            self.queues.app_queue(app).len()
        } else {
            0
        }
    }

    /// Drains every deferred packet in arrival order, bypassing
    /// Algorithm 1 (the fallback immediate-send mode and the system
    /// shutdown path use this).
    pub fn drain_pending(&mut self) -> Vec<Packet> {
        self.queues.drain_all()
    }

    /// Removes and returns the oldest deferred packet (force-flush-oldest
    /// shed policy), or `None` when nothing is deferred.
    pub fn pop_oldest(&mut self) -> Option<Packet> {
        self.queues.pop_oldest()
    }

    /// [`ETrainScheduler::pop_oldest`] restricted to one app's queue —
    /// the victim when a *per-app* admission bound trips.
    pub fn pop_oldest_in(&mut self, app: CargoAppId) -> Option<Packet> {
        self.queues.pop_oldest_in(app)
    }

    /// Removes and returns the deferred packet with the lowest
    /// instantaneous delay cost (drop-lowest-value shed policy), or
    /// `None` when nothing is deferred.
    pub fn evict_lowest_value(&mut self, now_s: f64) -> Option<Packet> {
        self.queues.evict_lowest_value(now_s)
    }

    /// [`ETrainScheduler::evict_lowest_value`] restricted to one app's
    /// queue — the victim when a *per-app* admission bound trips.
    pub fn evict_lowest_value_in(&mut self, app: CargoAppId, now_s: f64) -> Option<Packet> {
        self.queues.evict_lowest_value_in(app, now_s)
    }

    /// The current total instantaneous cost `P(t)` (paper Eq. 6).
    pub fn total_cost(&self, now_s: f64) -> f64 {
        self.queues.total_cost(now_s)
    }

    /// Forcibly removes one pending packet from its waiting queue,
    /// bypassing Algorithm 1. The eTrain system runtime uses this to honor
    /// per-request deadline overrides (a request whose own deadline is
    /// about to pass is released regardless of Θ and heartbeats).
    pub fn force_release(&mut self, app: CargoAppId, packet_id: u64) -> Option<Packet> {
        self.queues.remove(app, packet_id)
    }

    /// Greedy drift-maximizing selection of up to `budget` packets
    /// (paper Eq. 9) — the cached hot path.
    ///
    /// Bit-for-bit identical to [`ETrainScheduler::select_reference`]:
    /// `ϕ_u(t)` is a pure function of `(profile, arrival, now, slot)`, so
    /// snapshotting every candidate's ϕ once (in the reference scan order)
    /// and marking selections with a flag reproduces the reference's
    /// per-round recompute exactly — same candidate order, same gain
    /// arithmetic, same `>`-only tie-break, same `selected_sum` updates —
    /// at O(n + k·n) comparisons instead of O(k·n) ϕ evaluations, with
    /// zero allocations beyond the returned `Vec`.
    fn select(&mut self, now_s: f64, budget: Option<usize>) -> Vec<Packet> {
        let slot = self.config.slot_s;
        // With an unbounded budget every queued packet is selected — the
        // greedy order is irrelevant, so short-circuit (k = ∞ fast path).
        if budget.is_none() {
            return self.queues.drain_all();
        }
        let budget = budget.expect("bounded budget checked above");
        if self.queues.is_empty() {
            return Vec::new();
        }

        let app_count = self.queues.app_count();
        let scratch = &mut self.scratch;
        scratch.p_bar.clear();
        scratch.selected_sum.clear();
        scratch.phi.clear();
        scratch.app_end.clear();
        scratch.id.clear();
        scratch.taken.clear();
        // P̄_i(t) is fixed for the whole selection round; accumulate it in
        // the same per-queue order as `speculative_backlog` while the
        // candidate snapshot is taken.
        for i in 0..app_count {
            let app = CargoAppId(i);
            let mut backlog = 0.0f64;
            for packet in self.queues.app_queue(app) {
                let phi = self.queues.speculative_cost(packet, now_s, slot);
                backlog += phi;
                scratch.phi.push(phi);
                scratch.id.push(packet.id);
            }
            scratch.p_bar.push(backlog);
            scratch.selected_sum.push(0.0);
            scratch.app_end.push(scratch.phi.len());
        }
        scratch.taken.resize(scratch.phi.len(), false);

        let candidates = scratch.phi.len();
        let mut selected: Vec<Packet> = Vec::with_capacity(budget.min(candidates));
        while selected.len() < budget && selected.len() < candidates {
            // Find (i, u) maximizing the marginal drift gain, scanning
            // candidates in the same order as the reference's live-queue
            // rescan (app ascending, queue position ascending).
            // `P̄_i − Σ_{q∈Q*_i} ϕ_q` is constant within a round, so it is
            // hoisted per app instead of re-read per candidate.
            let mut best: Option<(f64, usize)> = None;
            let mut start = 0usize;
            for i in 0..app_count {
                let end = scratch.app_end[i];
                let unselected = scratch.p_bar[i] - scratch.selected_sum[i];
                let lanes = scratch.phi[start..end]
                    .iter()
                    .zip(&scratch.taken[start..end]);
                for (offset, (&phi, &taken)) in lanes.enumerate() {
                    if taken {
                        continue;
                    }
                    let gain = unselected * phi - phi * phi / 2.0;
                    let better = match &best {
                        None => true,
                        Some((best_gain, _)) => gain > *best_gain,
                    };
                    if better {
                        best = Some((gain, start + offset));
                    }
                }
                start = end;
            }
            let Some((_, idx)) = best else { break };
            let app_i = scratch.app_end.partition_point(|&end| end <= idx);
            let phi = scratch.phi[idx];
            scratch.taken[idx] = true;
            scratch.selected_sum[app_i] += phi;
            let removed = self
                .queues
                .remove(CargoAppId(app_i), scratch.id[idx])
                .expect("selected packet is pending");
            selected.push(removed);
        }
        selected
    }

    /// The retained from-scratch greedy selection (the pre-campaign code
    /// path): `P̄_i` rebuilt into fresh `Vec`s every call and `ϕ_u`
    /// recomputed on every greedy round. Kept verbatim as the equivalence
    /// oracle for [`ETrainScheduler::select`] and the `hotpath_speedup`
    /// denominator.
    fn select_reference(&mut self, now_s: f64, budget: Option<usize>) -> Vec<Packet> {
        let slot = self.config.slot_s;
        // With an unbounded budget every queued packet is selected — the
        // greedy order is irrelevant, so short-circuit (k = ∞ fast path).
        if budget.is_none() {
            return self.queues.drain_all();
        }
        let budget = budget.expect("bounded budget checked above");

        // P̄_i(t) is fixed for the whole selection round.
        let app_count = self.queues.app_count();
        let p_bar: Vec<f64> = (0..app_count)
            .map(|i| self.queues.speculative_backlog(CargoAppId(i), now_s, slot))
            .collect();
        // Σ_{q ∈ Q*_i} ϕ_q(t) grows as packets are selected.
        let mut selected_sum = vec![0.0f64; app_count];
        let mut selected: Vec<Packet> = Vec::new();

        while selected.len() < budget && !self.queues.is_empty() {
            // Find (i, u) maximizing the marginal drift gain.
            let mut best: Option<(f64, Packet)> = None;
            for i in 0..app_count {
                let app = CargoAppId(i);
                for packet in self.queues.app_queue(app) {
                    let phi = self.queues.speculative_cost(packet, now_s, slot);
                    let gain = (p_bar[i] - selected_sum[i]) * phi - phi * phi / 2.0;
                    let better = match &best {
                        None => true,
                        Some((best_gain, _)) => gain > *best_gain,
                    };
                    if better {
                        best = Some((gain, *packet));
                    }
                }
            }
            let Some((_, packet)) = best else { break };
            selected_sum[packet.app.index()] += self.queues.speculative_cost(&packet, now_s, slot);
            let removed = self
                .queues
                .remove(packet.app, packet.id)
                .expect("selected packet is pending");
            selected.push(removed);
        }
        selected
    }

    /// The retained from-scratch slot decision (the pre-campaign code
    /// path): O(n) queue recounts, an unconditional full `P(t)` sum, and
    /// [`ETrainScheduler::select_reference`]. Dispatched to when
    /// [`ETrainScheduler::set_reference_decisions`] (or
    /// [`REFERENCE_COST_ENV`]) selects the reference path.
    fn on_slot_reference(&mut self, ctx: &SlotContext) -> Vec<Packet> {
        // Paper Sec. V-3: with no train app alive, stop deferring so cargo
        // apps never wait indefinitely. The latch clears as soon as a slot
        // observes a live train again (restart recovery).
        self.trains_dead = !ctx.trains_alive;
        let queued = self.queues.recount_len();
        let queued_bytes = self.queues.recount_bytes();
        if !ctx.trains_alive {
            let released = self.queues.drain_all();
            self.record_decision(
                ctx.now_s,
                0.0,
                ctx.heartbeat_departing,
                queued,
                queued_bytes,
                None,
                released.len(),
            );
            return released;
        }
        let total = self.queues.total_cost(ctx.now_s);
        if total < self.config.theta && !ctx.heartbeat_departing {
            self.record_decision(ctx.now_s, total, false, queued, queued_bytes, Some(0), 0);
            return Vec::new();
        }
        let budget = if ctx.heartbeat_departing {
            self.config.k
        } else {
            Some(1)
        };
        let released = self.select_reference(ctx.now_s, budget);
        self.record_decision(
            ctx.now_s,
            total,
            ctx.heartbeat_departing,
            queued,
            queued_bytes,
            budget,
            released.len(),
        );
        released
    }
}

impl Scheduler for ETrainScheduler {
    fn name(&self) -> &'static str {
        "eTrain"
    }

    fn on_arrival(&mut self, packet: Packet, _now_s: f64) -> Result<Vec<Packet>, SchedulerError> {
        // While the scheduler is stopped (all trains dead) arrivals are
        // released immediately rather than parked until the next slot.
        if self.trains_dead {
            // Still validate the app id against the registered profiles.
            self.queues.push(packet)?;
            return Ok(self.queues.drain_all());
        }
        self.queues.push(packet)?;
        Ok(Vec::new())
    }

    fn on_slot(&mut self, ctx: &SlotContext) -> Vec<Packet> {
        if self.reference_decisions {
            return self.on_slot_reference(ctx);
        }
        // Paper Sec. V-3: with no train app alive, stop deferring so cargo
        // apps never wait indefinitely. The latch clears as soon as a slot
        // observes a live train again (restart recovery).
        self.trains_dead = !ctx.trains_alive;
        // O(1) cached counters (integer-exact, so identical to the
        // reference recounts).
        let queued = self.queues.len();
        let queued_bytes = self.queues.total_bytes();
        if !ctx.trains_alive {
            let released = self.queues.drain_all();
            self.record_decision(
                ctx.now_s,
                0.0,
                ctx.heartbeat_departing,
                queued,
                queued_bytes,
                None,
                released.len(),
            );
            return released;
        }
        // The journal event carries the exact `P(t)`, so the full sum is
        // only owed when events are on; otherwise the Θ gate needs just a
        // boolean, and `total_cost_breaches` answers it with a bit-exact
        // partial-sum early exit.
        let total = if self.obs_enabled {
            Some(self.queues.total_cost(ctx.now_s))
        } else {
            None
        };
        let deferral = !ctx.heartbeat_departing
            && match total {
                Some(total) => total < self.config.theta,
                None => !self
                    .queues
                    .total_cost_breaches(ctx.now_s, self.config.theta),
            };
        if deferral {
            self.record_decision(
                ctx.now_s,
                total.unwrap_or(0.0),
                false,
                queued,
                queued_bytes,
                Some(0),
                0,
            );
            return Vec::new();
        }
        let budget = if ctx.heartbeat_departing {
            self.config.k
        } else {
            Some(1)
        };
        let released = self.select(ctx.now_s, budget);
        self.record_decision(
            ctx.now_s,
            total.unwrap_or(0.0),
            ctx.heartbeat_departing,
            queued,
            queued_bytes,
            budget,
            released.len(),
        );
        released
    }

    fn slot_s(&self) -> f64 {
        self.config.slot_s
    }

    fn slot_quiescent(&self, trains_alive: bool) -> bool {
        // With nothing queued, a heartbeat-free slot selects nothing (for
        // any Θ, including Θ = 0: the greedy select over empty queues is
        // empty) and the decision recorder skips `queued == 0` deferrals.
        // The liveness latch must already match the slot's value, or
        // `on_slot` would flip it — a real state change.
        self.queues.is_empty() && self.trains_dead != trains_alive
    }

    fn set_obs_enabled(&mut self, enabled: bool) {
        self.obs_enabled = enabled;
        if !enabled {
            self.obs_events.clear();
        }
    }

    fn set_reference_decisions(&mut self, reference: bool) {
        self.reference_decisions = reference;
    }

    fn take_obs_events(&mut self) -> Vec<(f64, etrain_obs::Event)> {
        std::mem::take(&mut self.obs_events)
    }

    fn pending(&self) -> usize {
        self.queues.len()
    }

    fn pending_bytes(&self) -> u64 {
        self.queues.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostProfile;

    fn packet(id: u64, app: usize, arrival_s: f64) -> Packet {
        Packet {
            id,
            app: CargoAppId(app),
            arrival_s,
            size_bytes: 1_000,
        }
    }

    fn ctx(now_s: f64, heartbeat: bool) -> SlotContext {
        SlotContext {
            now_s,
            heartbeat_departing: heartbeat,
            predicted_bandwidth_bps: 500_000.0,
            trains_alive: true,
        }
    }

    fn scheduler(theta: f64, k: Option<usize>) -> ETrainScheduler {
        ETrainScheduler::new(
            ETrainConfig {
                theta,
                k,
                slot_s: 1.0,
            },
            AppProfile::paper_trio(30.0),
        )
    }

    #[test]
    fn defers_below_theta_without_heartbeat() {
        let mut s = scheduler(1.0, None);
        s.on_arrival(packet(0, 1, 0.0), 0.0).unwrap();
        // Weibo cost at t=5 is 5/30 ≈ 0.17 < Θ=1.
        assert!(s.on_slot(&ctx(5.0, false)).is_empty());
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn heartbeat_overrides_theta_gate() {
        let mut s = scheduler(10.0, None);
        s.on_arrival(packet(0, 1, 0.0), 0.0).unwrap();
        let released = s.on_slot(&ctx(1.0, true));
        assert_eq!(released.len(), 1);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn cost_breach_releases_one_packet_per_slot() {
        let mut s = scheduler(0.5, None);
        for i in 0..3 {
            s.on_arrival(packet(i, 1, 0.0), 0.0).unwrap();
        }
        // At t=10 each Weibo packet costs 1/3 → total 1.0 ≥ Θ.
        let released = s.on_slot(&ctx(10.0, false));
        assert_eq!(released.len(), 1, "non-heartbeat slots release K=1");
        assert_eq!(s.pending(), 2);
    }

    #[test]
    fn k_bounds_heartbeat_release() {
        let mut s = scheduler(0.2, Some(2));
        for i in 0..5 {
            s.on_arrival(packet(i, 1, 0.0), 0.0).unwrap();
        }
        let released = s.on_slot(&ctx(10.0, true));
        assert_eq!(released.len(), 2);
        assert_eq!(s.pending(), 3);
    }

    #[test]
    fn k_infinity_flushes_backlog_on_heartbeat() {
        let mut s = scheduler(0.2, None);
        for i in 0..7 {
            s.on_arrival(packet(i, i as usize % 3, 0.0), 0.0).unwrap();
        }
        let released = s.on_slot(&ctx(10.0, true));
        assert_eq!(released.len(), 7);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn greedy_prefers_higher_speculative_cost() {
        // Two Weibo packets with different ages: the older one (higher
        // φ_u) must be selected first.
        let mut s = scheduler(0.0, Some(1));
        s.on_arrival(packet(0, 1, 0.0), 0.0).unwrap(); // age 20 at t=20
        s.on_arrival(packet(1, 1, 15.0), 15.0).unwrap(); // age 5 at t=20
        let released = s.on_slot(&ctx(20.0, true));
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].id, 0);
    }

    #[test]
    fn greedy_balances_across_apps() {
        // One old Mail packet (still free: f1 = 0 before deadline) vs a
        // young Cloud packet (f3 grows immediately): the Cloud packet wins.
        let mut s = ETrainScheduler::new(
            ETrainConfig {
                theta: 0.0,
                k: Some(1),
                slot_s: 1.0,
            },
            vec![
                AppProfile::new("Mail", CostProfile::mail(120.0)),
                AppProfile::new("Cloud", CostProfile::cloud(30.0)),
            ],
        );
        s.on_arrival(packet(0, 0, 0.0), 0.0).unwrap();
        s.on_arrival(packet(1, 1, 10.0), 10.0).unwrap();
        let released = s.on_slot(&ctx(20.0, true));
        assert_eq!(released[0].id, 1);
    }

    #[test]
    fn dead_trains_flush_everything() {
        let mut s = scheduler(100.0, Some(1));
        for i in 0..4 {
            s.on_arrival(packet(i, 0, 0.0), 0.0).unwrap();
        }
        let mut dead_ctx = ctx(5.0, false);
        dead_ctx.trains_alive = false;
        let released = s.on_slot(&dead_ctx);
        assert_eq!(released.len(), 4);
    }

    #[test]
    fn empty_queues_release_nothing_even_on_heartbeat() {
        let mut s = scheduler(0.0, None);
        assert!(s.on_slot(&ctx(5.0, true)).is_empty());
    }

    #[test]
    fn packets_never_duplicated_or_lost() {
        let mut s = scheduler(0.1, Some(3));
        let mut seen = std::collections::HashSet::new();
        for i in 0..20 {
            s.on_arrival(packet(i, (i % 3) as usize, i as f64), i as f64)
                .unwrap();
        }
        let mut released = Vec::new();
        for slot in 20..200 {
            let heartbeat = slot % 30 == 0;
            released.extend(s.on_slot(&ctx(slot as f64, heartbeat)));
        }
        for p in &released {
            assert!(seen.insert(p.id), "packet {} released twice", p.id);
        }
        assert_eq!(released.len() + s.pending(), 20);
        assert_eq!(released.len(), 20, "all packets eventually released");
    }

    #[test]
    fn unknown_app_is_reported() {
        let mut s = scheduler(0.1, None);
        let err = s.on_arrival(packet(0, 99, 0.0), 0.0).unwrap_err();
        assert!(matches!(err, SchedulerError::UnknownApp { .. }));
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        let _ = scheduler(0.1, Some(0));
    }

    #[test]
    fn reference_cost_spellings_parse() {
        for on in ["1", "true", "ON", " reference "] {
            assert_eq!(parse_reference_cost(on), Ok(true), "{on:?}");
        }
        for off in ["0", "false", "OFF", "cached"] {
            assert_eq!(parse_reference_cost(off), Ok(false), "{off:?}");
        }
        assert!(parse_reference_cost("sometimes").is_err());
    }

    #[test]
    fn reference_and_cached_paths_release_identically() {
        // A mixed drive — bounded k, heartbeats, Θ breaches, obs on —
        // must produce identical releases, identical queues, and
        // identical journal events on both decision paths.
        let mut cached = scheduler(0.4, Some(3));
        let mut reference = scheduler(0.4, Some(3));
        reference.set_reference_decisions(true);
        assert!(reference.reference_decisions());
        cached.set_obs_enabled(true);
        reference.set_obs_enabled(true);
        for i in 0..40u64 {
            let p = packet(i, (i % 3) as usize, i as f64 * 1.7);
            cached.on_arrival(p, p.arrival_s).unwrap();
            reference.on_arrival(p, p.arrival_s).unwrap();
        }
        for slot in 0..240u64 {
            let heartbeat = slot % 31 == 0;
            let c = cached.on_slot(&ctx(slot as f64, heartbeat));
            let r = reference.on_slot(&ctx(slot as f64, heartbeat));
            assert_eq!(c, r, "slot {slot} diverged");
        }
        assert_eq!(cached.pending(), reference.pending());
        assert_eq!(cached.pending_bytes(), reference.pending_bytes());
        let ce = cached.take_obs_events();
        let re = reference.take_obs_events();
        assert_eq!(ce.len(), re.len());
        for ((ct, cev), (rt, rev)) in ce.iter().zip(&re) {
            assert_eq!(ct, rt);
            assert_eq!(format!("{cev:?}"), format!("{rev:?}"));
        }
    }

    #[test]
    fn obs_events_buffer_decisions_only_when_enabled() {
        let mut s = scheduler(10.0, None);
        s.on_arrival(packet(0, 1, 0.0), 0.0).unwrap();
        let _ = s.on_slot(&ctx(1.0, false));
        assert!(
            s.take_obs_events().is_empty(),
            "disabled scheduler must buffer nothing"
        );

        s.set_obs_enabled(true);
        let _ = s.on_slot(&ctx(2.0, false)); // deferral: cost < Θ
        let _ = s.on_slot(&ctx(3.0, true)); // heartbeat: releases backlog
        let events = s.take_obs_events();
        assert_eq!(events.len(), 2);
        match &events[0].1 {
            etrain_obs::Event::PiggybackDecision {
                budget_k,
                released,
                queued,
                ..
            } => {
                assert_eq!(*budget_k, Some(0), "deferral marker");
                assert_eq!(*released, 0);
                assert_eq!(*queued, 1);
            }
            other => panic!("unexpected event {other:?}"),
        }
        match &events[1].1 {
            etrain_obs::Event::PiggybackDecision {
                heartbeat_departing,
                released,
                ..
            } => {
                assert!(*heartbeat_departing);
                assert_eq!(*released, 1);
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert!(s.take_obs_events().is_empty(), "drain empties the buffer");
    }
}
