//! Reproduction binary for experiment `engine_speedup` — slot vs event
//! kernel wall-clock comparison. Pass `--quick` for a fast smoke run.

fn main() {
    etrain_bench::run_binary("engine_speedup");
}
