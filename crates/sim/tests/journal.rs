//! Integration tests for the observability layer: deterministic journal
//! merging across worker counts, and conformance of the metrics
//! registry's energy decomposition against the report's energy ledger.

use etrain_sim::{Event, ObsMode, RunGrid, RunSpec, Scenario, SchedulerKind};
use proptest::prelude::*;

fn journaled_grid(jobs: usize) -> RunGrid {
    let base = Scenario::paper_default().duration_secs(900).seed(3);
    RunGrid::from_specs(
        [0.0_f64, 0.5, 1.0, 2.0]
            .iter()
            .map(|&theta| {
                RunSpec::with_knob(
                    format!("Θ={theta}"),
                    theta,
                    base.clone()
                        .scheduler(SchedulerKind::ETrain { theta, k: None }),
                )
            })
            .collect(),
    )
    .obs(ObsMode::Jsonl)
    .jobs(jobs)
}

#[test]
fn merged_journal_is_byte_identical_serial_vs_parallel() {
    let (serial_reports, serial_journal) = journaled_grid(1).try_run_journaled().unwrap();
    let (parallel_reports, parallel_journal) = journaled_grid(4).try_run_journaled().unwrap();
    assert_eq!(serial_reports, parallel_reports);
    assert!(!serial_journal.is_empty());
    assert_eq!(
        serial_journal.to_jsonl(),
        parallel_journal.to_jsonl(),
        "merged journal must not depend on worker count"
    );
}

#[test]
fn merged_journal_tags_records_with_job_indices() {
    let grid = journaled_grid(2);
    let (reports, journal) = grid.try_run_journaled().unwrap();
    let runs: Vec<usize> = journal.records().iter().map(|r| r.run).collect();
    // Concatenated in job-index order: run tags are non-decreasing and
    // cover every job.
    assert!(runs.windows(2).all(|w| w[0] <= w[1]), "{runs:?}");
    assert_eq!(*runs.last().unwrap(), reports.len() - 1);
    // Per-run heartbeat events agree with the per-run report counter.
    for (index, report) in reports.iter().enumerate() {
        let fired = journal
            .records()
            .iter()
            .filter(|r| r.run == index && matches!(r.event, Event::HeartbeatFired { .. }))
            .count();
        assert_eq!(fired, report.heartbeats_sent, "run {index}");
    }
}

#[test]
fn journaled_run_report_matches_plain_run_modulo_metrics() {
    let scenario = Scenario::paper_default().duration_secs(900).seed(5);
    let plain = scenario.clone().obs(ObsMode::Off).run();
    let (mut journaled, _, journal) = scenario
        .clone()
        .obs(ObsMode::Jsonl)
        .try_run_journaled()
        .unwrap();
    assert!(journal.is_some());
    assert!(journaled.metrics.is_some());
    journaled.metrics = None;
    assert_eq!(plain, journaled, "observability must not perturb results");
    // And with observability off, no journal and no metrics at all.
    let (report, _, no_journal) = scenario.obs(ObsMode::Off).try_run_journaled().unwrap();
    assert!(no_journal.is_none());
    assert!(report.metrics.is_none());
}

#[test]
fn metrics_energy_gauges_sum_to_the_report_total() {
    let (report, _, _) = Scenario::paper_default()
        .duration_secs(900)
        .seed(7)
        .obs(ObsMode::Ring)
        .try_run_journaled()
        .unwrap();
    let metrics = report.metrics.expect("metrics recorded");
    let total = metrics.energy_total_j().expect("all gauges set");
    assert!(
        (total - report.total_energy_j).abs() <= 1e-6 * report.total_energy_j.max(1.0),
        "per-state decomposition {total} != ledger {}",
        report.total_energy_j
    );
    assert_eq!(metrics.heartbeats, report.heartbeats_sent as u64);
    assert_eq!(metrics.retries, report.retries as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The per-RRC-state energy gauges must decompose the run's total
    /// energy exactly, for any scheduler knob and workload seed — the
    /// same identity the oracle's ledger invariant audits, reached
    /// through the observability path instead.
    #[test]
    fn energy_decomposition_holds_across_knobs(
        seed in 0u64..64,
        theta in prop_oneof![Just(0.0), Just(0.2), Just(1.0), Just(5.0)],
        lambda in prop_oneof![Just(0.02), Just(0.08), Just(0.2)],
    ) {
        let (report, _, journal) = Scenario::paper_default()
            .duration_secs(600)
            .seed(seed)
            .lambda(lambda)
            .scheduler(SchedulerKind::ETrain { theta, k: None })
            .obs(ObsMode::Jsonl)
            .try_run_journaled()
            .unwrap();
        let metrics = report.metrics.expect("metrics recorded");
        let total = metrics.energy_total_j().expect("all gauges set");
        prop_assert!(
            (total - report.total_energy_j).abs()
                <= 1e-6 * report.total_energy_j.max(1.0),
            "decomposition {} != ledger {}", total, report.total_energy_j
        );
        // The journal's summed per-event view agrees with the counters.
        let journal = journal.expect("journal recorded");
        let fired = journal
            .records()
            .iter()
            .filter(|r| matches!(r.event, Event::HeartbeatFired { .. }))
            .count();
        prop_assert_eq!(fired, report.heartbeats_sent);
    }
}
