//! Golden-snapshot test: the quick-mode headline metrics of every
//! registry experiment, compared bit-for-bit (relative tolerance 1e-9)
//! against the committed fixture.
//!
//! The simulator is deterministic, so any drift in these numbers means a
//! behavioural change somewhere in the stack — radio physics, trace
//! synthesis, a scheduler, the engine — and must be either fixed or
//! consciously accepted by regenerating the fixture:
//!
//! ```text
//! ETRAIN_UPDATE_GOLDEN=1 cargo test -p etrain-bench --test golden
//! ```

use etrain_bench::{registry, run_experiments, Headline};
use serde::{Deserialize, Serialize};

/// The per-experiment snapshot stored in the fixture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenExperiment {
    name: String,
    headlines: Vec<Headline>,
}

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("quick_headlines.json")
}

fn current_snapshot() -> Vec<GoldenExperiment> {
    // engine_speedup's, hotpath_speedup's and fleet_throughput's headlines
    // are wall-clock measurements and vary by machine, and svc_recovery's
    // depend on wall-clock plus whether the daemon binary happens to be
    // built; their determinism gates (bit-identical outputs, zero
    // divergent recoveries, serial ≡ sharded fleets) are asserted inside
    // the experiments and their crates' own test suites, and each module
    // carries its own smoke test — so filtering them out *before* running
    // keeps this test's coverage intact while sparing it their wall-clock
    // (fleet_throughput's quick tier alone is 10⁵ devices).
    let registry: Vec<_> = registry()
        .into_iter()
        .filter(|e| {
            !matches!(
                e.name,
                "engine_speedup" | "hotpath_speedup" | "svc_recovery" | "fleet_throughput"
            )
        })
        .collect();
    run_experiments(&registry, true, etrain_bench::default_jobs())
        .into_iter()
        .map(|run| GoldenExperiment {
            name: run.record.name,
            headlines: run.record.headlines,
        })
        .collect()
}

#[test]
fn quick_headlines_match_golden_snapshot() {
    let current = current_snapshot();
    let path = fixture_path();

    if std::env::var("ETRAIN_UPDATE_GOLDEN").is_ok() {
        let json = serde_json::to_string_pretty(&current).expect("snapshot serializes");
        std::fs::create_dir_all(path.parent().expect("fixture has a parent"))
            .expect("creating the fixture directory");
        std::fs::write(&path, json).expect("writing the fixture");
        eprintln!("regenerated {}", path.display());
        return;
    }

    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with ETRAIN_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    let golden: Vec<GoldenExperiment> = serde_json::from_str(&raw).expect("fixture parses");

    assert_eq!(
        golden.iter().map(|g| g.name.as_str()).collect::<Vec<_>>(),
        current.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(),
        "experiment registry changed; regenerate the fixture"
    );
    for (g, c) in golden.iter().zip(&current) {
        assert_eq!(
            g.headlines.len(),
            c.headlines.len(),
            "{}: headline count changed; regenerate the fixture",
            g.name
        );
        for (gh, ch) in g.headlines.iter().zip(&c.headlines) {
            assert_eq!(gh.metric, ch.metric, "{}: headline metric renamed", g.name);
            assert_eq!(gh.unit, ch.unit, "{}: headline unit changed", g.name);
            let tol = 1e-9 * (1.0 + gh.value.abs().max(ch.value.abs()));
            assert!(
                (gh.value - ch.value).abs() <= tol,
                "{}: headline {} drifted from {} to {} (tolerance {tol})",
                g.name,
                gh.metric,
                gh.value,
                ch.value
            );
        }
    }
}
