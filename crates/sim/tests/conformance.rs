//! Differential conformance suite: seeded random workloads pushed through
//! every scheduler, audited by the simulation oracle in `Strict` mode, and
//! checked for bit-for-bit determinism between serial and parallel
//! execution.
//!
//! The quick tier (`conformance_quick_*`) runs in the default test pass;
//! the exhaustive ≥200-scenario sweep is `#[ignore]`d and executed by the
//! CI `conformance` job (`cargo test -q -- --ignored`).

use etrain_sim::oracle::{self, OracleMode, OracleViolation};
use etrain_sim::{
    audit_scheduler_ordering, conformance_kinds, CasePlan, EngineKind, EngineOutput, FaultPlan,
    Journal, ObsMode, RunGrid, Scenario,
};
use etrain_trace::faults::hash_unit;
use etrain_trace::heartbeats::Heartbeat;
use etrain_trace::packets::Packet;
use etrain_trace::{CargoAppId, TrainAppId};

/// Deterministic scenario generator, shared with the chaos campaign: every
/// knob a pure function of the seed (see [`CasePlan::from_seed`]), so a
/// failing seed reproduces exactly.
fn random_scenario(seed: u64, with_faults: bool) -> Scenario {
    CasePlan::from_seed(seed, with_faults).scenario()
}

/// Runs one random scenario through every scheduler twice — serial and
/// on the worker pool — in `Strict` oracle mode, and demands bit-for-bit
/// identical reports.
fn assert_strict_and_deterministic(seed: u64, with_faults: bool) {
    let base = random_scenario(seed, with_faults);
    let serial = RunGrid::over_schedulers(&base, &conformance_kinds())
        .oracle(OracleMode::Strict)
        .jobs(1)
        .try_run()
        .unwrap_or_else(|e| {
            panic!("strict oracle failed (seed {seed}, faults {with_faults}): {e}")
        });
    let parallel = RunGrid::over_schedulers(&base, &conformance_kinds())
        .oracle(OracleMode::Strict)
        .jobs(4)
        .try_run()
        .unwrap_or_else(|e| {
            panic!("strict oracle failed (seed {seed}, faults {with_faults}): {e}")
        });
    assert_eq!(
        serial, parallel,
        "parallel execution diverged from serial (seed {seed}, faults {with_faults})"
    );
    for report in &serial {
        let outcome = report
            .oracle
            .as_ref()
            .expect("strict mode attaches outcome");
        assert!(outcome.is_clean());
        assert!(outcome.checks > 0);
    }
}

/// Quick tier: 8 seeds × {fault-free, faulty} × 5 schedulers × {serial,
/// pool} = 160 audited runs in the default test pass.
#[test]
fn conformance_quick_strict_and_deterministic() {
    for seed in 0..8 {
        assert_strict_and_deterministic(seed, false);
        assert_strict_and_deterministic(seed, true);
    }
}

/// Exhaustive tier for the CI conformance job: 25 seeds × {fault-free,
/// faulty} × 5 schedulers = 250 strict-audited scenarios (500 engine runs
/// counting the serial/parallel comparison).
#[test]
#[ignore = "exhaustive sweep; run with `cargo test -- --ignored` (CI conformance job)"]
fn conformance_full_strict_and_deterministic() {
    for seed in 0..25 {
        assert_strict_and_deterministic(seed, false);
        assert_strict_and_deterministic(seed, true);
    }
}

/// Runs one generated workload under both engine kernels — same traces,
/// same scheduler, `Strict` oracle, ring journal — and demands
/// bit-for-bit identical reports and journals. This is the event kernel's
/// conformance contract: batched slot retirement is an optimization the
/// outputs must not be able to see.
fn assert_kernels_interchangeable(seed: u64, with_faults: bool) {
    let base = random_scenario(seed, with_faults)
        .oracle(OracleMode::Strict)
        .obs(ObsMode::Ring);
    for kind in conformance_kinds() {
        let scenario = base.clone().scheduler(kind);
        let traces = scenario.generate_traces();
        let run = |engine: EngineKind| {
            scenario
                .clone()
                .engine(engine)
                .try_run_journaled_on(&traces)
                .unwrap_or_else(|e| {
                    panic!(
                        "{engine} kernel failed strict run \
                         (seed {seed}, faults {with_faults}, scheduler {kind:?}): {e}"
                    )
                })
        };
        let (slot_report, _, slot_journal) = run(EngineKind::Slot);
        let (event_report, _, event_journal) = run(EngineKind::Event);

        assert_eq!(
            slot_report, event_report,
            "kernels diverged (seed {seed}, faults {with_faults}, scheduler {kind:?})"
        );
        // Belt and suspenders: byte-identical serialized artifacts, the
        // form checkpoints and BENCH_repro.json actually persist.
        assert_eq!(
            serde_json::to_string(&slot_report).expect("report serializes"),
            serde_json::to_string(&event_report).expect("report serializes"),
            "serialized reports diverged (seed {seed}, faults {with_faults}, scheduler {kind:?})"
        );
        assert_eq!(
            slot_journal.as_ref().map(Journal::to_jsonl),
            event_journal.as_ref().map(Journal::to_jsonl),
            "journals diverged (seed {seed}, faults {with_faults}, scheduler {kind:?})"
        );
        let outcome = slot_report
            .oracle
            .as_ref()
            .expect("strict mode attaches outcome");
        assert!(outcome.is_clean(), "oracle violations under seed {seed}");
    }
}

/// Quick differential tier: 6 seeds × {fault-free, faulty} × 5 schedulers
/// × 2 kernels = 120 journaled strict runs in the default test pass.
#[test]
fn conformance_quick_kernels_interchangeable() {
    for seed in 0..6 {
        assert_kernels_interchangeable(seed, false);
        assert_kernels_interchangeable(seed, true);
    }
}

/// Exhaustive differential tier for the CI conformance job: 25 seeds ×
/// {fault-free, faulty} × 5 schedulers × 2 kernels = 500 journaled
/// strict runs.
#[test]
#[ignore = "exhaustive sweep; run with `cargo test -- --ignored` (CI conformance job)"]
fn conformance_full_kernels_interchangeable() {
    for seed in 0..25 {
        assert_kernels_interchangeable(seed, false);
        assert_kernels_interchangeable(seed, true);
    }
}

/// A small instance for the scheduler-ordering audit: sparse Weibo-style
/// packets (≤ 7, inside the exact offline solver's range) and a steady
/// heartbeat train.
fn sparse_instance(seed: u64) -> (Vec<Packet>, Vec<Heartbeat>) {
    let n = 3 + (hash_unit(seed, 100, 0) * 4.0) as usize;
    let mut arrivals: Vec<f64> = (0..n)
        .map(|i| hash_unit(seed, 101, i as u64) * 400.0)
        .collect();
    arrivals.sort_by(f64::total_cmp);
    let packets = arrivals
        .iter()
        .enumerate()
        .map(|(i, &arrival_s)| Packet {
            id: i as u64,
            app: CargoAppId(1),
            arrival_s,
            size_bytes: 2_000 + (hash_unit(seed, 102, i as u64) * 6_000.0) as u64,
        })
        .collect();
    let heartbeats = (1..10)
        .map(|i| Heartbeat {
            train: TrainAppId(0),
            time_s: i as f64 * 60.0 + hash_unit(seed, 103, i) * 20.0,
            size_bytes: 100,
        })
        .collect();
    (packets, heartbeats)
}

/// Invariant 4: on controlled fault-free instances, online eTrain's extra
/// energy sits between the exact offline optimum (with discretization
/// slack) and the no-piggyback baseline.
#[test]
fn conformance_scheduler_ordering_holds_on_sparse_instances() {
    let profiles = etrain_sched::AppProfile::paper_trio(600.0);
    for seed in 0..6 {
        let (packets, heartbeats) = sparse_instance(seed);
        let audit = audit_scheduler_ordering(
            packets,
            heartbeats,
            profiles.clone(),
            450_000.0,
            600.0,
            50.0,
        )
        .unwrap_or_else(|v| panic!("ordering violated (seed {seed}): {v}"));
        assert!(audit.offline_exact, "instance should be exactly solvable");
        assert!(audit.baseline_extra_j.is_finite() && audit.baseline_extra_j > 0.0);
        assert!(audit.etrain_extra_j <= audit.baseline_extra_j + 1e-6);
    }
}

/// A clean reference run plus its input traces, for corruption tests.
fn reference_run() -> (EngineOutput, Vec<Packet>, Vec<Heartbeat>) {
    let scenario = Scenario::paper_default()
        .oracle(OracleMode::Off)
        .duration_secs(900)
        .seed(7);
    let traces = scenario.generate_traces();
    let (_, output) = scenario
        .try_run_with_output_on(&traces)
        .expect("reference scenario is valid");
    (output, traces.packets.to_vec(), traces.heartbeats.to_vec())
}

fn violations_of(
    output: &EngineOutput,
    packets: &[Packet],
    heartbeats: &[Heartbeat],
) -> Vec<OracleViolation> {
    oracle::audit_engine(output, packets, heartbeats, &FaultPlan::none()).violations
}

#[test]
fn oracle_accepts_the_reference_run() {
    let (output, packets, heartbeats) = reference_run();
    let outcome = oracle::audit_engine(&output, &packets, &heartbeats, &FaultPlan::none());
    assert!(outcome.is_clean(), "violations: {:?}", outcome.violations);
    assert!(outcome.checks > 100, "audit actually checked things");
    assert!(!output.completed.is_empty(), "reference run moved packets");
}

#[test]
fn oracle_catches_tampered_tail_energy() {
    let (mut output, packets, heartbeats) = reference_run();
    output.tail_energy_j += 1.0;
    let violations = violations_of(&output, &packets, &heartbeats);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, OracleViolation::EnergyImbalance { .. })),
        "expected EnergyImbalance, got {violations:?}"
    );
}

#[test]
fn oracle_catches_truncated_transmission_log() {
    // Shortening a logged transmission is the engine-level analogue of a
    // truncated DCH tail: the rebuilt timeline loses busy time and tail,
    // so it no longer balances against the online ledger.
    let (mut output, packets, heartbeats) = reference_run();
    let last = output.transmissions.last_mut().expect("has transmissions");
    last.duration_s *= 0.5;
    let violations = violations_of(&output, &packets, &heartbeats);
    // Depending on where the truncated transmission sits, the imbalance
    // surfaces as a ledger mismatch or — when the freed time is absorbed
    // by a same-power DCH tail — as a busy-time mismatch.
    assert!(
        violations.iter().any(|v| matches!(
            v,
            OracleViolation::EnergyImbalance { .. } | OracleViolation::MetricsMismatch { .. }
        )),
        "expected EnergyImbalance or busy-time MetricsMismatch, got {violations:?}"
    );
}

#[test]
fn oracle_catches_dropped_completion() {
    let (mut output, packets, heartbeats) = reference_run();
    output.completed.pop().expect("has completions");
    let violations = violations_of(&output, &packets, &heartbeats);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, OracleViolation::PacketConservation { .. })),
        "expected PacketConservation, got {violations:?}"
    );
}

#[test]
fn oracle_catches_duplicated_completion() {
    let (mut output, packets, heartbeats) = reference_run();
    let dup = *output.completed.first().expect("has completions");
    output.completed.push(dup);
    let violations = violations_of(&output, &packets, &heartbeats);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, OracleViolation::DuplicateTerminalState { .. })),
        "expected DuplicateTerminalState, got {violations:?}"
    );
}

#[test]
fn oracle_catches_overlapping_transmissions() {
    let (mut output, packets, heartbeats) = reference_run();
    let first = *output.transmissions.first().expect("has transmissions");
    output.transmissions.push(first);
    let violations = violations_of(&output, &packets, &heartbeats);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, OracleViolation::OverlappingTransmissions { .. })),
        "expected OverlappingTransmissions, got {violations:?}"
    );
}

#[test]
fn oracle_catches_fault_artifacts_without_a_lossy_plan() {
    let (mut output, packets, heartbeats) = reference_run();
    output.retries = 3;
    let violations = violations_of(&output, &packets, &heartbeats);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, OracleViolation::UnexpectedFaultArtifact { .. })),
        "expected UnexpectedFaultArtifact, got {violations:?}"
    );
}

#[test]
fn oracle_catches_corrupted_heartbeat_count() {
    let (mut output, packets, heartbeats) = reference_run();
    output.heartbeats_sent += 1;
    let violations = violations_of(&output, &packets, &heartbeats);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, OracleViolation::HeartbeatCount { .. })),
        "expected HeartbeatCount, got {violations:?}"
    );
}

#[test]
fn strict_mode_surfaces_violations_as_scenario_errors() {
    // Drive the checked engine entry point directly with a tampered
    // output is impossible (it runs the engine itself), so exercise the
    // Strict plumbing on a clean run: it must succeed, attach a clean
    // outcome, and count checks in the process-wide tallies.
    let before = oracle::counters();
    let report = Scenario::paper_default()
        .oracle(OracleMode::Strict)
        .duration_secs(600)
        .seed(11)
        .try_run()
        .expect("clean run passes strict oracle");
    let outcome = report.oracle.expect("strict attaches outcome");
    assert_eq!(outcome.mode, OracleMode::Strict);
    assert!(outcome.is_clean());
    let after = oracle::counters();
    assert!(after.checks >= before.checks + outcome.checks);
}

#[test]
fn off_mode_attaches_no_outcome() {
    let report = Scenario::paper_default()
        .oracle(OracleMode::Off)
        .duration_secs(600)
        .seed(11)
        .run();
    assert!(report.oracle.is_none());
}

#[test]
fn empty_workload_passes_strict_oracle_end_to_end() {
    let report = Scenario::paper_default()
        .oracle(OracleMode::Strict)
        .duration_secs(600)
        .packets(vec![])
        .heartbeats(vec![])
        .try_run()
        .expect("empty workload is a valid degenerate run");
    assert_eq!(report.packets_completed, 0);
    assert_eq!(report.heartbeats_sent, 0);
    assert_eq!(report.extra_energy_j, 0.0);
    assert_eq!(report.tail_fraction(), 0.0);
    assert_eq!(report.abandonment_ratio, 0.0);
    assert_eq!(report.normalized_delay_s, 0.0);
    assert_eq!(report.deadline_violation_ratio, 0.0);
    assert!(report.oracle.expect("outcome attached").is_clean());
}
