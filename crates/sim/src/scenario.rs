//! Scenario builder: a declarative description of one experiment run.

use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::Arc;

use etrain_obs::{Event, Journal, MetricsRegistry, ObsMode};
use etrain_radio::{RadioParams, RrcState, Timeline};
use etrain_sched::{
    AdmissionConfig, AppProfile, BaselineScheduler, ETimeConfig, ETimeScheduler, ETrainConfig,
    ETrainScheduler, GuardedScheduler, HealthConfig, PerEsConfig, PerEsScheduler, RetryPolicy,
    Scheduler,
};
use etrain_trace::bandwidth::{wuhan_drive_synthetic, BandwidthTrace};
use etrain_trace::faults::FaultPlan;
use etrain_trace::heartbeats::{synthesize, Heartbeat, TrainAppSpec};
use etrain_trace::packets::{CargoWorkload, Packet};
use serde::{Deserialize, Serialize};

use crate::engine::{Engine, EngineKind, EngineOutput, EngineSnapshot};
use crate::metrics::RunReport;
use crate::oracle::{self, OracleMode, OracleViolation};

/// A scenario that cannot run, detected by [`Scenario::validate`] before
/// any simulation work starts.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The horizon is zero, negative, or non-finite.
    InvalidDuration {
        /// The offending horizon, in seconds.
        horizon_s: f64,
    },
    /// The workload's total arrival rate is negative or non-finite.
    InvalidWorkload {
        /// The offending total rate, in pkt/s.
        total_rate: f64,
    },
    /// The bandwidth source cannot supply a usable trace.
    InvalidBandwidth {
        /// What is wrong with it.
        reason: String,
    },
    /// The fault plan violates an invariant (see `FaultPlan::validate`).
    InvalidFaultPlan {
        /// What is wrong with it.
        reason: String,
    },
    /// The retry policy violates an invariant (see `RetryPolicy::validate`).
    InvalidRetryPolicy {
        /// What is wrong with it.
        reason: String,
    },
    /// The scheduler kind's configuration violates an invariant (zero
    /// capacity, zero ladder threshold, ...).
    InvalidScheduler {
        /// What is wrong with it.
        reason: String,
    },
    /// The run executed but the simulation oracle (in
    /// [`OracleMode::Strict`]) found a violated invariant.
    OracleViolation {
        /// The first violated invariant.
        violation: OracleViolation,
    },
    /// A kill/resume run could not restore its mid-run engine snapshot
    /// (see [`crate::SnapshotError`]) — the snapshot belongs to different
    /// inputs or the simulation lost determinism.
    Snapshot {
        /// The restore failure, rendered.
        reason: String,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::InvalidDuration { horizon_s } => {
                write!(
                    f,
                    "scenario duration must be positive and finite, got {horizon_s} s"
                )
            }
            ScenarioError::InvalidWorkload { total_rate } => {
                write!(
                    f,
                    "workload total rate must be non-negative and finite, got {total_rate} pkt/s"
                )
            }
            ScenarioError::InvalidBandwidth { reason } => {
                write!(f, "invalid bandwidth source: {reason}")
            }
            ScenarioError::InvalidFaultPlan { reason } => {
                write!(f, "invalid fault plan: {reason}")
            }
            ScenarioError::InvalidRetryPolicy { reason } => {
                write!(f, "invalid retry policy: {reason}")
            }
            ScenarioError::InvalidScheduler { reason } => {
                write!(f, "invalid scheduler config: {reason}")
            }
            ScenarioError::OracleViolation { violation } => {
                write!(f, "oracle violation: {violation}")
            }
            ScenarioError::Snapshot { reason } => {
                write!(f, "snapshot restore failed: {reason}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Which scheduling algorithm a scenario runs.
///
/// Serializes with its knob values (externally tagged), and displays as a
/// self-describing label (`eTrain(Θ=0.2, k=∞)`), so run specs and reports
/// carry the full algorithm configuration, not just a name.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Transmit on arrival (the paper's default baseline).
    Baseline,
    /// The eTrain online strategy (Algorithm 1).
    ETrain {
        /// The delay-cost bound Θ.
        theta: f64,
        /// Packets per heartbeat; `None` is the paper's k = ∞.
        k: Option<usize>,
    },
    /// The PerES comparator with the given cost bound Ω.
    PerEs {
        /// The performance cost bound Ω its dynamic V converges to.
        omega: f64,
    },
    /// The eTime comparator with the given static tradeoff V (bytes).
    ETime {
        /// Backlog threshold on an average channel, in bytes.
        v_bytes: f64,
    },
    /// eTrain wrapped in the Healthy → Degraded → Fallback degradation
    /// ladder with bounded admission.
    Guarded {
        /// The delay-cost bound Θ.
        theta: f64,
        /// Packets per heartbeat; `None` is the paper's k = ∞.
        k: Option<usize>,
        /// The ladder's thresholds.
        health: HealthConfig,
        /// Queue bounds and shed policy (unbounded for ladder-only runs).
        admission: AdmissionConfig,
    },
}

impl SchedulerKind {
    /// Builds the scheduler for the given registered app profiles.
    pub fn build(&self, profiles: Vec<AppProfile>) -> Box<dyn Scheduler> {
        match *self {
            SchedulerKind::Baseline => Box::new(BaselineScheduler::new(profiles)),
            SchedulerKind::ETrain { theta, k } => Box::new(ETrainScheduler::new(
                ETrainConfig {
                    theta,
                    k,
                    slot_s: 1.0,
                },
                profiles,
            )),
            SchedulerKind::PerEs { omega } => Box::new(PerEsScheduler::new(
                PerEsConfig {
                    omega,
                    ..PerEsConfig::default()
                },
                profiles,
            )),
            SchedulerKind::ETime { v_bytes } => Box::new(ETimeScheduler::new(
                ETimeConfig {
                    v_bytes,
                    slot_s: 60.0,
                },
                profiles,
            )),
            SchedulerKind::Guarded {
                theta,
                k,
                health,
                admission,
            } => Box::new(
                GuardedScheduler::new(
                    ETrainConfig {
                        theta,
                        k,
                        slot_s: 1.0,
                    },
                    health,
                    profiles,
                )
                .with_admission(admission),
            ),
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Baseline => "Baseline",
            SchedulerKind::ETrain { .. } => "eTrain",
            SchedulerKind::PerEs { .. } => "PerES",
            SchedulerKind::ETime { .. } => "eTime",
            SchedulerKind::Guarded { .. } => "eTrain (guarded)",
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerKind::Baseline => write!(f, "Baseline"),
            SchedulerKind::ETrain { theta, k } => match k {
                Some(k) => write!(f, "eTrain(Θ={theta}, k={k})"),
                None => write!(f, "eTrain(Θ={theta}, k=∞)"),
            },
            SchedulerKind::PerEs { omega } => write!(f, "PerES(Ω={omega})"),
            SchedulerKind::ETime { v_bytes } => write!(f, "eTime(V={v_bytes} B)"),
            SchedulerKind::Guarded {
                theta,
                k,
                admission,
                ..
            } => {
                match k {
                    Some(k) => write!(f, "eTrain-guarded(Θ={theta}, k={k}")?,
                    None => write!(f, "eTrain-guarded(Θ={theta}, k=∞")?,
                }
                if !admission.is_unbounded() {
                    write!(f, ", {}", admission.policy)?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Where a scenario's bandwidth trace comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum BandwidthSource {
    /// The synthetic Wuhan drive trace (regime-switching AR process),
    /// seeded independently of the workload seed.
    SyntheticDrive,
    /// A constant bandwidth in bits per second (analytic comparisons).
    Constant(f64),
    /// An explicit trace.
    Trace(BandwidthTrace),
}

/// The generated inputs of one run — packet arrivals, heartbeat departures
/// and the bandwidth trace — behind `Arc`s so many runs over the same
/// workload + seed (a Θ sweep, a scheduler comparison) share one
/// synthesis instead of regenerating per point.
///
/// Produced by [`Scenario::generate_traces`] and cached across a grid by
/// the runner's trace cache (see [`crate::runner::TraceCache`]); consumed
/// by [`Scenario::try_run_with_output_on`].
#[derive(Debug, Clone)]
pub struct TraceBundle {
    /// Cargo packet arrivals, in arrival order.
    pub packets: Arc<Vec<Packet>>,
    /// Train-app heartbeat departures, in departure order.
    pub heartbeats: Arc<Vec<Heartbeat>>,
    /// The time-varying channel the transmissions ride.
    pub bandwidth: Arc<BandwidthTrace>,
}

/// A complete experiment description with builder-style configuration.
///
/// [`Scenario::paper_default`] reproduces the paper's simulation setup
/// (Sec. VI-A): train apps QQ + WeChat + WhatsApp, cargo apps Mail +
/// Weibo + Cloud at total rate λ = 0.08 pkt/s, the synthetic drive
/// bandwidth trace, Galaxy S4 3G radio parameters, 7200-second horizon.
///
/// # Examples
///
/// ```
/// use etrain_sim::{Scenario, SchedulerKind};
///
/// let report = Scenario::paper_default()
///     .duration_secs(600)
///     .lambda(0.04)
///     .scheduler(SchedulerKind::Baseline)
///     .seed(1)
///     .run();
/// assert_eq!(report.scheduler, "Baseline");
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    trains: Vec<TrainAppSpec>,
    workload: CargoWorkload,
    packets_override: Option<Vec<Packet>>,
    heartbeats_override: Option<Vec<Heartbeat>>,
    profiles: Vec<AppProfile>,
    radio: RadioParams,
    bandwidth: BandwidthSource,
    horizon_s: f64,
    scheduler: SchedulerKind,
    seed: u64,
    faults: FaultPlan,
    retry: RetryPolicy,
    oracle: OracleMode,
    obs: ObsMode,
    engine: EngineKind,
    reference_cost: bool,
}

impl Scenario {
    /// The paper's reference simulation setup (see the type docs).
    pub fn paper_default() -> Self {
        Scenario {
            trains: TrainAppSpec::paper_trio(),
            workload: CargoWorkload::paper_default(0.08),
            packets_override: None,
            heartbeats_override: None,
            profiles: AppProfile::paper_defaults(),
            radio: RadioParams::galaxy_s4_3g(),
            bandwidth: BandwidthSource::SyntheticDrive,
            horizon_s: 7200.0,
            scheduler: SchedulerKind::ETrain {
                theta: 0.2,
                k: None,
            },
            seed: 0,
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
            oracle: OracleMode::from_env(),
            obs: ObsMode::from_env(),
            engine: EngineKind::from_env(),
            reference_cost: etrain_sched::reference_cost_from_env(),
        }
    }

    /// Sets the simulated duration in seconds.
    pub fn duration_secs(mut self, secs: u64) -> Self {
        self.horizon_s = secs as f64;
        self
    }

    /// Sets the scheduling algorithm.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Sets the workload/bandwidth seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the train apps (e.g. 0–3 trains for Fig. 10(a)).
    pub fn trains(mut self, trains: Vec<TrainAppSpec>) -> Self {
        self.trains = trains;
        self
    }

    /// Replaces the cargo workload.
    pub fn workload(mut self, workload: CargoWorkload) -> Self {
        self.workload = workload;
        self
    }

    /// Scales the paper workload to total arrival rate `lambda` (pkt/s),
    /// preserving the 5 : 2 : 10 app proportion (Fig. 8(b)).
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.workload = CargoWorkload::paper_default(lambda);
        self
    }

    /// Uses an explicit packet trace instead of generating one (trace
    /// replay; the trace's app ids must match the registered profiles).
    pub fn packets(mut self, packets: Vec<Packet>) -> Self {
        self.packets_override = Some(packets);
        self
    }

    /// Uses an explicit heartbeat trace instead of synthesizing one.
    pub fn heartbeats(mut self, heartbeats: Vec<Heartbeat>) -> Self {
        self.heartbeats_override = Some(heartbeats);
        self
    }

    /// Replaces the cargo app profiles (delay-cost functions).
    pub fn profiles(mut self, profiles: Vec<AppProfile>) -> Self {
        self.profiles = profiles;
        self
    }

    /// Applies one shared deadline to every registered profile
    /// (the Fig. 10(c) deadline sweep).
    pub fn shared_deadline(mut self, deadline_s: f64) -> Self {
        for p in &mut self.profiles {
            p.cost = p.cost.with_deadline(deadline_s);
        }
        self
    }

    /// Replaces the radio parameter set.
    pub fn radio(mut self, radio: RadioParams) -> Self {
        self.radio = radio;
        self
    }

    /// Replaces the bandwidth source.
    pub fn bandwidth(mut self, bandwidth: BandwidthSource) -> Self {
        self.bandwidth = bandwidth;
        self
    }

    /// Injects a fault plan: channel outages, transmission loss, heartbeat
    /// drops and train deaths. `FaultPlan::none()` (the default) is a
    /// strict no-op — the run is bit-for-bit identical to a fault-free one.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Sets the retry policy applied to transmissions the fault plan
    /// fails.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the simulation-oracle mode for this scenario's runs.
    /// [`Scenario::paper_default`] starts from the `ETRAIN_ORACLE`
    /// environment variable ([`OracleMode::from_env`], default `Off`);
    /// this builder overrides it.
    pub fn oracle(mut self, mode: OracleMode) -> Self {
        self.oracle = mode;
        self
    }

    /// The simulation-oracle mode this scenario runs under.
    pub fn oracle_mode(&self) -> OracleMode {
        self.oracle
    }

    /// Sets the observability mode for this scenario's runs.
    /// [`Scenario::paper_default`] starts from the `ETRAIN_OBS`
    /// environment variable ([`ObsMode::from_env`], default `Off`); this
    /// builder overrides it. With observability off the run takes the
    /// exact bit-for-bit code path it always did; any enabled mode makes
    /// [`Scenario::try_run_journaled`] return a structured event journal
    /// and fills [`RunReport::metrics`](crate::RunReport::metrics).
    ///
    /// # Examples
    ///
    /// ```
    /// use etrain_sim::{ObsMode, Scenario};
    ///
    /// let (report, _output, journal) = Scenario::paper_default()
    ///     .duration_secs(600)
    ///     .obs(ObsMode::Jsonl)
    ///     .seed(1)
    ///     .try_run_journaled()
    ///     .expect("valid scenario");
    /// let journal = journal.expect("journaling was enabled");
    /// assert!(!journal.is_empty());
    /// assert!(report.metrics.is_some());
    /// ```
    pub fn obs(mut self, mode: ObsMode) -> Self {
        self.obs = mode;
        self
    }

    /// The observability mode this scenario runs under.
    pub fn obs_mode(&self) -> ObsMode {
        self.obs
    }

    /// Sets the simulation kernel for this scenario's runs.
    /// [`Scenario::paper_default`] starts from the `ETRAIN_ENGINE`
    /// environment variable ([`EngineKind::from_env`], default `Slot`);
    /// this builder overrides it. Both kernels produce bit-for-bit
    /// identical reports, journals and oracle ledgers; the event kernel
    /// merely skips quiescent slot boundaries in bulk, so sparse standby
    /// scenarios run much faster.
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = kind;
        self
    }

    /// The simulation kernel this scenario runs under.
    pub fn engine_kind(&self) -> EngineKind {
        self.engine
    }

    /// Makes the eTrain scheduler use its retained reference decision path
    /// (full per-slot cost recomputation, allocation-per-decision) instead
    /// of the cached hot path. [`Scenario::paper_default`] starts from the
    /// `ETRAIN_REFERENCE_COST` environment variable
    /// ([`etrain_sched::reference_cost_from_env`], default off); this
    /// builder overrides it. Both paths are bit-for-bit equivalent — the
    /// reference path exists as an escape hatch and as the ground truth the
    /// equivalence test suite compares the hot path against.
    pub fn reference_cost(mut self, reference: bool) -> Self {
        self.reference_cost = reference;
        self
    }

    /// Whether this scenario's schedulers run their reference decision
    /// path.
    pub fn reference_cost_enabled(&self) -> bool {
        self.reference_cost
    }

    /// The scheduler this scenario runs.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.scheduler
    }

    /// The registered app profiles.
    pub fn profiles_ref(&self) -> &[AppProfile] {
        &self.profiles
    }

    /// Checks the scenario's inputs without running it.
    ///
    /// # Errors
    ///
    /// Returns the first problem found: non-positive duration, negative
    /// workload rate, unusable bandwidth source, or an invalid fault plan
    /// or retry policy.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if !(self.horizon_s.is_finite() && self.horizon_s > 0.0) {
            return Err(ScenarioError::InvalidDuration {
                horizon_s: self.horizon_s,
            });
        }
        let total_rate = self.workload.total_rate();
        if !(total_rate.is_finite() && total_rate >= 0.0) && self.packets_override.is_none() {
            return Err(ScenarioError::InvalidWorkload { total_rate });
        }
        if let BandwidthSource::Constant(bps) = &self.bandwidth {
            if !(bps.is_finite() && *bps > 0.0) {
                return Err(ScenarioError::InvalidBandwidth {
                    reason: format!(
                        "constant bandwidth must be positive and finite, got {bps} bps"
                    ),
                });
            }
        }
        self.faults
            .validate()
            .map_err(|reason| ScenarioError::InvalidFaultPlan { reason })?;
        self.retry
            .validate()
            .map_err(|reason| ScenarioError::InvalidRetryPolicy { reason })?;
        if let SchedulerKind::Guarded {
            health, admission, ..
        } = &self.scheduler
        {
            health
                .validate()
                .map_err(|reason| ScenarioError::InvalidScheduler { reason })?;
            admission
                .validate()
                .map_err(|reason| ScenarioError::InvalidScheduler { reason })?;
        }
        Ok(())
    }

    /// Runs the scenario and reports the paper's metrics.
    ///
    /// # Panics
    ///
    /// Panics if [`Scenario::validate`] fails or an explicit packet trace
    /// references an app index outside the registered profiles.
    pub fn run(&self) -> RunReport {
        self.try_run().expect("invalid scenario")
    }

    /// Runs the scenario and returns both the metrics report and the raw
    /// engine output (per-packet completions, the transmission log, the
    /// reconstructable power trace) for deeper analysis.
    ///
    /// # Panics
    ///
    /// Panics if [`Scenario::validate`] fails or an explicit packet trace
    /// references an app index outside the registered profiles.
    pub fn run_with_output(&self) -> (RunReport, crate::engine::EngineOutput) {
        self.try_run_with_output().expect("invalid scenario")
    }

    /// Fallible [`Scenario::run`]: validates first, then runs.
    ///
    /// # Errors
    ///
    /// Returns what [`Scenario::validate`] returns.
    pub fn try_run(&self) -> Result<RunReport, ScenarioError> {
        Ok(self.try_run_with_output()?.0)
    }

    /// Fallible [`Scenario::run_with_output`]: validates first, then runs.
    ///
    /// # Errors
    ///
    /// Returns what [`Scenario::validate`] returns.
    pub fn try_run_with_output(
        &self,
    ) -> Result<(RunReport, crate::engine::EngineOutput), ScenarioError> {
        self.validate()?;
        let traces = self.generate_traces();
        self.try_run_with_output_on(&traces)
    }

    /// A key identifying exactly the inputs that [`Scenario::generate_traces`]
    /// reads: the train specs, cargo workload, any explicit trace
    /// overrides, the bandwidth source, the horizon and the seed. Two
    /// scenarios with equal keys generate bit-identical [`TraceBundle`]s,
    /// so a cache may serve one bundle to both. Scheduler, profiles,
    /// radio, faults and retry policy deliberately do not contribute —
    /// sweeping those knobs reuses the traces.
    pub fn trace_key(&self) -> u64 {
        let mut hasher = DefaultHasher::new();
        // `{:?}` on f64 prints the shortest round-trip representation, so
        // the rendered tuple is injective over the generation inputs.
        format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            self.trains,
            self.workload,
            self.packets_override,
            self.heartbeats_override,
            self.bandwidth,
            self.horizon_s.to_bits(),
            self.seed,
        )
        .hash(&mut hasher);
        hasher.finish()
    }

    /// Synthesizes (or clones, for explicit overrides) the packet,
    /// heartbeat and bandwidth traces this scenario runs on. Deterministic
    /// in the scenario's [`Scenario::trace_key`] inputs.
    pub fn generate_traces(&self) -> TraceBundle {
        let packets = match &self.packets_override {
            Some(p) => p.clone(),
            None => self.workload.generate(self.horizon_s, self.seed),
        };
        let heartbeats = match &self.heartbeats_override {
            Some(h) => h.clone(),
            None => synthesize(&self.trains, self.horizon_s, self.seed.wrapping_add(1)),
        };
        let bandwidth = match &self.bandwidth {
            BandwidthSource::SyntheticDrive => wuhan_drive_synthetic(self.seed.wrapping_add(2)),
            BandwidthSource::Constant(bps) => BandwidthTrace::constant(*bps),
            BandwidthSource::Trace(trace) => trace.clone(),
        };
        TraceBundle {
            packets: Arc::new(packets),
            heartbeats: Arc::new(heartbeats),
            bandwidth: Arc::new(bandwidth),
        }
    }

    /// Runs the scenario on pre-generated traces (validating first). The
    /// caller is responsible for passing a bundle generated from a
    /// scenario with the same [`Scenario::trace_key`]; the runner's trace
    /// cache upholds this.
    ///
    /// # Errors
    ///
    /// Returns what [`Scenario::validate`] returns.
    pub fn try_run_with_output_on(
        &self,
        traces: &TraceBundle,
    ) -> Result<(RunReport, EngineOutput), ScenarioError> {
        let (report, output, _journal) = self.try_run_journaled_on(traces)?;
        Ok((report, output))
    }

    /// Fallible journaled run on self-generated traces: validates,
    /// generates traces, then calls [`Scenario::try_run_journaled_on`].
    ///
    /// # Errors
    ///
    /// Returns what [`Scenario::validate`] returns.
    pub fn try_run_journaled(
        &self,
    ) -> Result<(RunReport, EngineOutput, Option<Journal>), ScenarioError> {
        self.validate()?;
        let traces = self.generate_traces();
        self.try_run_journaled_on(&traces)
    }

    /// Runs the scenario on pre-generated traces and — when the scenario's
    /// [`ObsMode`] is enabled — additionally returns the run's structured
    /// event journal and fills [`RunReport::metrics`](crate::RunReport::metrics)
    /// with a [`MetricsRegistry`] snapshot.
    ///
    /// The journal is canonicalized ((time, seq)-ordered with densely
    /// renumbered sequence numbers), so two runs of the same scenario
    /// produce byte-identical [`Journal::to_jsonl`] output. RRC state
    /// transitions are reconstructed from the run's offline
    /// [`Timeline`] and merged into the event stream. With observability
    /// off this is exactly [`Scenario::try_run_with_output_on`] plus a
    /// `None` journal — bit-for-bit, no instrumentation overhead.
    ///
    /// # Errors
    ///
    /// Returns what [`Scenario::validate`] returns.
    pub fn try_run_journaled_on(
        &self,
        traces: &TraceBundle,
    ) -> Result<(RunReport, EngineOutput, Option<Journal>), ScenarioError> {
        self.validate()?;
        let mut scheduler = self.scheduler.build(self.profiles.clone());
        scheduler.set_reference_decisions(self.reference_cost);
        let mut journal = if self.obs.is_enabled() {
            Some(Journal::new())
        } else {
            None
        };
        let output = Engine::new(
            scheduler.as_mut(),
            &traces.packets,
            &traces.heartbeats,
            &traces.bandwidth,
            &self.radio,
            self.horizon_s,
            &self.faults,
            &self.retry,
            journal.as_mut(),
        )
        .with_kind(self.engine)
        .run();
        self.finish_journaled(scheduler.name(), output, journal, traces)
    }

    /// Runs the scenario as a crash-consistency trial: the run is killed
    /// after `kill_after_events` engine events, keeping only the durable
    /// artifacts a real crash would leave behind — the last
    /// [`EngineSnapshot`] taken at a multiple of `snapshot_every_slots`
    /// slot boundaries (serialized and re-parsed to prove durability) and
    /// the journal prefix recorded up to that snapshot. A second,
    /// freshly built engine then restores from the snapshot by replay,
    /// journals only post-snapshot events, and runs to the horizon; the
    /// pre-kill journal prefix and the resumed suffix are merged.
    ///
    /// The returned report, output and journal must be bit-for-bit
    /// identical to [`Scenario::try_run_journaled_on`]'s — the kill/resume
    /// harness in the chaos crate asserts exactly that. If the run
    /// finishes before `kill_after_events`, the kill is a no-op and this
    /// *is* an uninterrupted run. A kill before the first snapshot resumes
    /// from nothing (a fresh run), which is the correct crash semantics
    /// for a process that died before its first checkpoint flush.
    ///
    /// # Errors
    ///
    /// Returns what [`Scenario::validate`] returns, or
    /// [`ScenarioError::Snapshot`] if the snapshot refuses to restore
    /// (which would mean the simulation lost determinism).
    pub fn try_run_interrupted_on(
        &self,
        traces: &TraceBundle,
        kill_after_events: u64,
        snapshot_every_slots: u64,
    ) -> Result<(RunReport, EngineOutput, Option<Journal>), ScenarioError> {
        self.validate()?;
        assert!(
            snapshot_every_slots > 0,
            "snapshot cadence must be positive"
        );

        // Phase 1: the run that gets killed. Durable state is the last
        // cadence-aligned snapshot plus the journal as of that snapshot.
        let mut scheduler = self.scheduler.build(self.profiles.clone());
        scheduler.set_reference_decisions(self.reference_cost);
        let mut journal = if self.obs.is_enabled() {
            Some(Journal::new())
        } else {
            None
        };
        let mut engine = Engine::new(
            scheduler.as_mut(),
            &traces.packets,
            &traces.heartbeats,
            &traces.bandwidth,
            &self.radio,
            self.horizon_s,
            &self.faults,
            &self.retry,
            journal.as_mut(),
        )
        .with_kind(self.engine);
        let mut durable: Option<String> = None;
        let mut last_snapshot_slot = 0u64;
        let mut finished = false;
        while engine.events_processed() < kill_after_events {
            if !engine.step() {
                finished = true;
                break;
            }
            // Snapshot whenever the step counter crosses a cadence
            // multiple. The slot kernel lands on every multiple exactly;
            // the event kernel can jump past several in one batched step,
            // which still counts as one crossing — one snapshot.
            let steps = engine.steps_run();
            if steps / snapshot_every_slots > last_snapshot_slot / snapshot_every_slots {
                last_snapshot_slot = steps;
                // Serializing here is what makes the snapshot durable:
                // the resume below only ever sees the JSON.
                durable = Some(
                    serde_json::to_string(&engine.snapshot())
                        .expect("snapshots serialize infallibly"),
                );
            }
        }
        if finished {
            // The run ended before the kill point: nothing was interrupted.
            let output = engine.finish();
            return self.finish_journaled(scheduler.name(), output, journal, traces);
        }
        drop(engine);

        // Phase 2: resume in a "new process" — a freshly built scheduler
        // and engine, fed only the durable snapshot and journal prefix.
        let mut resumed_scheduler = self.scheduler.build(self.profiles.clone());
        resumed_scheduler.set_reference_decisions(self.reference_cost);
        let mut suffix = self.obs.is_enabled().then(Journal::new);
        let output = match durable {
            Some(snapshot_json) => {
                let snapshot: EngineSnapshot =
                    serde_json::from_str(&snapshot_json).expect("durable snapshots parse back");
                if let Some(journal) = journal.as_mut() {
                    journal.truncate(snapshot.journal_events);
                }
                let mut engine = Engine::restore(
                    resumed_scheduler.as_mut(),
                    &traces.packets,
                    &traces.heartbeats,
                    &traces.bandwidth,
                    &self.radio,
                    self.horizon_s,
                    &self.faults,
                    &self.retry,
                    &snapshot,
                )
                .map_err(|e| ScenarioError::Snapshot {
                    reason: e.to_string(),
                })?;
                if let Some(suffix) = suffix.as_mut() {
                    engine.attach_journal(suffix);
                }
                engine.run()
            }
            None => {
                // Crashed before the first checkpoint flush: the journal
                // prefix is empty and the resume is a fresh full run.
                if let Some(journal) = journal.as_mut() {
                    journal.truncate(0);
                }
                Engine::new(
                    resumed_scheduler.as_mut(),
                    &traces.packets,
                    &traces.heartbeats,
                    &traces.bandwidth,
                    &self.radio,
                    self.horizon_s,
                    &self.faults,
                    &self.retry,
                    suffix.as_mut(),
                )
                .with_kind(self.engine)
                .run()
            }
        };
        let merged = match (journal, suffix) {
            (Some(mut prefix), Some(suffix)) => {
                prefix.extend_from(suffix);
                Some(prefix)
            }
            _ => None,
        };
        self.finish_journaled(resumed_scheduler.name(), output, merged, traces)
    }

    /// Shared post-engine pipeline: report building, journal
    /// canonicalization with reconstructed RRC transitions, metrics
    /// collection, and the oracle audit. Both the uninterrupted and the
    /// kill/resume paths funnel through here, so their outputs are
    /// post-processed identically.
    fn finish_journaled(
        &self,
        scheduler_name: &str,
        output: EngineOutput,
        mut journal: Option<Journal>,
        traces: &TraceBundle,
    ) -> Result<(RunReport, EngineOutput, Option<Journal>), ScenarioError> {
        let mut report = RunReport::from_engine(scheduler_name, &output, &self.profiles);
        if let Some(journal) = journal.as_mut() {
            let timeline = output.timeline();
            append_rrc_transitions(journal, &timeline);
            journal.canonicalize();
            report.metrics = Some(collect_metrics(&output, &timeline, &self.radio, journal));
        }
        if self.oracle.is_enabled() {
            let outcome = oracle::audit_run(
                &report,
                &output,
                &traces.packets,
                &traces.heartbeats,
                &self.faults,
                &self.profiles,
                self.oracle,
            );
            if self.oracle == OracleMode::Strict {
                if let Some(first) = outcome.violations.first() {
                    return Err(ScenarioError::OracleViolation {
                        violation: first.clone(),
                    });
                }
            }
            report.oracle = Some(outcome);
        }
        Ok((report, output, journal))
    }
}

/// Lowercase label for an RRC state, matching the engine's
/// `Event::TailReuse { from_state }` convention.
fn state_label(state: RrcState) -> &'static str {
    match state {
        RrcState::Idle => "idle",
        RrcState::Fach => "fach",
        RrcState::Dch => "dch",
    }
}

/// Reconstructs `Event::RrcTransition` events from the offline timeline
/// and appends them to the journal (the caller canonicalizes afterwards,
/// interleaving them with the online events by time).
fn append_rrc_transitions(journal: &mut Journal, timeline: &Timeline) {
    for pair in timeline.segments().windows(2) {
        if pair[0].state != pair[1].state {
            journal.push(
                pair[1].start_s,
                Event::RrcTransition {
                    from: state_label(pair[0].state).to_string(),
                    to: state_label(pair[1].state).to_string(),
                },
            );
        }
    }
}

/// Builds the run's metrics snapshot from the engine output, the offline
/// timeline and the canonicalized journal.
///
/// The three per-state energy gauges decompose the run's *total* energy:
/// each gauge is (baseline idle draw + that state's extra draw) × time in
/// state, so across the horizon the gauges sum to
/// [`RunReport::total_energy_j`](crate::RunReport::total_energy_j)
/// exactly (the same identity the oracle's energy-ledger invariant
/// audits).
fn collect_metrics(
    output: &EngineOutput,
    timeline: &Timeline,
    radio: &RadioParams,
    journal: &Journal,
) -> etrain_obs::MetricsSnapshot {
    let mut reg = MetricsRegistry::new();
    reg.heartbeats.add(output.heartbeats_sent as u64);
    reg.tx_starts.add(output.transmissions.len() as u64);
    reg.retries.add(output.retries as u64);
    reg.sheds.add(output.shed.len() as u64);
    reg.forced_flushes.add(output.forced_flushes as u64);
    reg.health_transitions
        .add(output.health_events.len() as u64);
    for record in journal.records() {
        match &record.event {
            Event::TailReuse { .. } => reg.tail_reuses.inc(),
            Event::PiggybackDecision {
                queued, released, ..
            } => {
                reg.decisions.inc();
                reg.releases.add(*released as u64);
                if *queued > 0 {
                    reg.queue_depth.observe(*queued as f64);
                }
            }
            Event::RrcTransition { .. } => reg.rrc_transitions.inc(),
            _ => {}
        }
    }
    let idle_mw = radio.idle_mw();
    // One batched pass over the segments; bit-identical to three
    // per-state `time_in_state_s` scans.
    let [idle_s, fach_s, dch_s] = timeline.time_in_states_s();
    reg.energy_idle_j.set(idle_mw * idle_s / 1000.0);
    reg.energy_fach_j
        .set((idle_mw + radio.fach_extra_mw()) * fach_s / 1000.0);
    reg.energy_dch_j
        .set((idle_mw + radio.dch_extra_mw()) * dch_s / 1000.0);
    reg.snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_reproducible() {
        let a = Scenario::paper_default().duration_secs(900).seed(3).run();
        let b = Scenario::paper_default().duration_secs(900).seed(3).run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Scenario::paper_default().duration_secs(900).seed(3).run();
        let b = Scenario::paper_default().duration_secs(900).seed(4).run();
        assert_ne!(a, b);
    }

    #[test]
    fn scheduler_kinds_build_and_run() {
        for kind in [
            SchedulerKind::Baseline,
            SchedulerKind::ETrain {
                theta: 0.2,
                k: Some(20),
            },
            SchedulerKind::PerEs { omega: 0.5 },
            SchedulerKind::ETime { v_bytes: 50_000.0 },
        ] {
            let report = Scenario::paper_default()
                .duration_secs(600)
                .scheduler(kind)
                .seed(1)
                .run();
            assert_eq!(report.scheduler, kind.name());
            assert!(report.extra_energy_j > 0.0, "{}", kind.name());
        }
    }

    #[test]
    fn no_trains_means_no_heartbeats() {
        let report = Scenario::paper_default()
            .duration_secs(600)
            .trains(Vec::new())
            .scheduler(SchedulerKind::ETrain {
                theta: 0.2,
                k: None,
            })
            .seed(1)
            .run();
        assert_eq!(report.heartbeats_sent, 0);
        // With no trains alive, eTrain stops deferring: delay collapses.
        assert!(report.normalized_delay_s < 2.0);
    }

    #[test]
    fn shared_deadline_applies_to_all_profiles() {
        let s = Scenario::paper_default().shared_deadline(15.0);
        for p in s.profiles_ref() {
            assert_eq!(p.cost.deadline_s(), 15.0);
        }
    }

    #[test]
    fn constant_bandwidth_source() {
        let report = Scenario::paper_default()
            .duration_secs(600)
            .bandwidth(BandwidthSource::Constant(1_000_000.0))
            .seed(2)
            .run();
        assert!(report.busy_time_s > 0.0);
    }

    #[test]
    fn zero_fault_plan_is_bit_for_bit_identical_on_every_scheduler() {
        // The fault layer must be strictly additive: a fault-free plan —
        // even with a non-zero seed — reproduces the default run exactly,
        // for every scheduler kind.
        for kind in [
            SchedulerKind::Baseline,
            SchedulerKind::ETrain {
                theta: 0.2,
                k: None,
            },
            SchedulerKind::PerEs { omega: 0.5 },
            SchedulerKind::ETime { v_bytes: 50_000.0 },
        ] {
            let base = Scenario::paper_default()
                .duration_secs(1200)
                .scheduler(kind)
                .seed(7);
            let plain = base.clone().run();
            let faulted = base
                .faults(FaultPlan::seeded(123_456))
                .retry_policy(RetryPolicy::default())
                .run();
            assert_eq!(plain, faulted, "fault layer leaked into {}", kind.name());
        }
    }

    #[test]
    fn lossy_channel_produces_retries_and_wasted_energy() {
        let report = Scenario::paper_default()
            .duration_secs(1800)
            .scheduler(SchedulerKind::Baseline)
            .seed(5)
            .faults(FaultPlan::seeded(1).with_loss(0.3))
            .run();
        assert!(report.retries > 0, "30% loss must trigger retries");
        assert!(report.wasted_retry_energy_j > 0.0);
        assert!(report.wasted_retry_energy_j < report.transmission_energy_j);
    }

    #[test]
    fn impossible_loss_abandons_everything_released() {
        // Every attempt fails: nothing completes, everything released is
        // eventually abandoned (or still backing off at the horizon).
        let report = Scenario::paper_default()
            .duration_secs(1800)
            .scheduler(SchedulerKind::Baseline)
            .seed(5)
            .faults(FaultPlan::seeded(1).with_loss(1.0))
            .run();
        assert_eq!(report.packets_completed, 0);
        assert!(report.packets_abandoned > 0);
        assert!(report.abandonment_ratio > 0.5);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let run = || {
            Scenario::paper_default()
                .duration_secs(1500)
                .seed(9)
                .faults(
                    FaultPlan::seeded(4)
                        .with_loss(0.2)
                        .with_outage(300.0, 420.0)
                        .with_train_death(600.0, 900.0),
                )
                .run()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn train_death_window_suppresses_heartbeats() {
        let dead_all_run = Scenario::paper_default()
            .duration_secs(900)
            .seed(2)
            .faults(FaultPlan::seeded(0).with_train_death(0.0, 900.0))
            .run();
        assert_eq!(dead_all_run.heartbeats_sent, 0);
        // eTrain stops deferring when no train is alive: delay collapses.
        assert!(dead_all_run.normalized_delay_s < 2.0);
    }

    #[test]
    fn trace_key_ignores_run_knobs_and_tracks_trace_inputs() {
        let base = Scenario::paper_default().duration_secs(900).seed(3);
        let key = base.trace_key();
        // Scheduler, profiles, faults and retry do not feed the traces.
        assert_eq!(
            key,
            base.clone()
                .scheduler(SchedulerKind::Baseline)
                .shared_deadline(15.0)
                .faults(FaultPlan::seeded(9).with_loss(0.5))
                .trace_key()
        );
        // Seed, horizon, workload and bandwidth do.
        assert_ne!(key, base.clone().seed(4).trace_key());
        assert_ne!(key, base.clone().duration_secs(901).trace_key());
        assert_ne!(key, base.clone().lambda(0.05).trace_key());
        assert_ne!(
            key,
            base.clone()
                .bandwidth(BandwidthSource::Constant(1e6))
                .trace_key()
        );
    }

    #[test]
    fn shared_trace_bundle_reproduces_the_direct_run() {
        // One bundle, four schedulers: each run on the shared bundle must
        // be bit-for-bit identical to the self-generating path.
        let base = Scenario::paper_default().duration_secs(900).seed(11);
        let traces = base.generate_traces();
        for kind in [
            SchedulerKind::Baseline,
            SchedulerKind::ETrain {
                theta: 0.2,
                k: Some(20),
            },
            SchedulerKind::PerEs { omega: 0.5 },
            SchedulerKind::ETime { v_bytes: 50_000.0 },
        ] {
            let scenario = base.clone().scheduler(kind);
            let direct = scenario.run();
            let (shared, _) = scenario.try_run_with_output_on(&traces).unwrap();
            assert_eq!(direct, shared, "bundle run diverged for {kind}");
        }
    }

    #[test]
    fn scheduler_kind_display_is_self_describing() {
        assert_eq!(SchedulerKind::Baseline.to_string(), "Baseline");
        assert_eq!(
            SchedulerKind::ETrain {
                theta: 0.2,
                k: None
            }
            .to_string(),
            "eTrain(Θ=0.2, k=∞)"
        );
        assert_eq!(
            SchedulerKind::ETrain {
                theta: 1.5,
                k: Some(20)
            }
            .to_string(),
            "eTrain(Θ=1.5, k=20)"
        );
        assert_eq!(
            SchedulerKind::PerEs { omega: 0.5 }.to_string(),
            "PerES(Ω=0.5)"
        );
        assert_eq!(
            SchedulerKind::ETime { v_bytes: 50_000.0 }.to_string(),
            "eTime(V=50000 B)"
        );
    }

    #[test]
    fn scheduler_kind_serializes_with_knobs() {
        let json = serde_json::to_string(&SchedulerKind::ETrain {
            theta: 0.2,
            k: Some(20),
        })
        .unwrap();
        assert!(json.contains("ETrain"), "{json}");
        assert!(json.contains("theta"), "{json}");
        assert!(json.contains("0.2"), "{json}");
        let json = serde_json::to_string(&SchedulerKind::Baseline).unwrap();
        assert!(json.contains("Baseline"), "{json}");
    }

    #[test]
    fn interrupted_run_is_bit_for_bit_identical() {
        // Kill/resume at several points — before the first snapshot,
        // mid-run, and past the end — must reproduce the uninterrupted
        // run's report AND its canonicalized journal byte for byte.
        let scenario = Scenario::paper_default()
            .duration_secs(900)
            .seed(13)
            .obs(ObsMode::Ring)
            .oracle(OracleMode::Off)
            .faults(
                FaultPlan::seeded(3)
                    .with_loss(0.2)
                    .with_outage(200.0, 260.0),
            );
        let traces = scenario.generate_traces();
        let (full_report, _, full_journal) = scenario.try_run_journaled_on(&traces).unwrap();
        let full_jsonl = full_journal.expect("obs enabled").to_jsonl();
        for kill_after in [5, 500, 2500, u64::MAX] {
            let (report, _, journal) = scenario
                .try_run_interrupted_on(&traces, kill_after, 64)
                .unwrap_or_else(|e| panic!("kill at {kill_after}: {e}"));
            assert_eq!(full_report, report, "report diverged (kill {kill_after})");
            assert_eq!(
                full_jsonl,
                journal.expect("obs enabled").to_jsonl(),
                "journal diverged (kill {kill_after})"
            );
        }
    }

    #[test]
    fn validation_catches_bad_inputs() {
        let ok = Scenario::paper_default();
        assert_eq!(ok.validate(), Ok(()));

        let err = Scenario::paper_default().duration_secs(0).try_run();
        assert!(matches!(err, Err(ScenarioError::InvalidDuration { .. })));

        let err = Scenario::paper_default()
            .bandwidth(BandwidthSource::Constant(0.0))
            .try_run();
        assert!(matches!(err, Err(ScenarioError::InvalidBandwidth { .. })));

        let mut bad_plan = FaultPlan::none();
        bad_plan.loss_probability = 2.0;
        let err = Scenario::paper_default().faults(bad_plan).try_run();
        assert!(matches!(err, Err(ScenarioError::InvalidFaultPlan { .. })));

        let bad_retry = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        let err = Scenario::paper_default().retry_policy(bad_retry).try_run();
        assert!(matches!(err, Err(ScenarioError::InvalidRetryPolicy { .. })));
        // Errors render readably.
        assert!(err.unwrap_err().to_string().contains("max_attempts"));
    }
}
