//! Reproduction binary for experiment `ext_grid` — see DESIGN.md for the
//! artifact it generates. Pass `--quick` for a fast smoke run.

fn main() {
    etrain_bench::run_binary("ext_grid");
}
