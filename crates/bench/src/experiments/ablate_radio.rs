//! Ablation: how much of eTrain's benefit is the 3G tail.
//!
//! eTrain's entire saving comes from re-using the 17.5 s 3G tail. On a
//! WiFi-like radio with sub-second tails there is almost nothing to
//! re-use, so eTrain's advantage over the baseline should nearly vanish —
//! confirming the mechanism rather than some artifact.

use crate::ExperimentResult;
use etrain_radio::RadioParams;
use etrain_sim::{SchedulerKind, Table};

use super::{j, paper_base, pct};

/// Runs the radio ablation.
pub fn run(quick: bool) -> ExperimentResult {
    let base = paper_base(quick);
    let radios = [
        ("3G (Galaxy S4)", RadioParams::galaxy_s4_3g()),
        ("WiFi-like short tail", RadioParams::wifi_like()),
    ];
    let mut table = Table::new(
        "Ablation — radio tail length (Θ = 2, k = ∞)",
        &["radio", "baseline_j", "etrain_j", "saving"],
    );
    for (name, params) in radios {
        let baseline = base
            .clone()
            .radio(params.clone())
            .scheduler(SchedulerKind::Baseline)
            .run();
        let etrain = base
            .clone()
            .radio(params)
            .scheduler(SchedulerKind::ETrain {
                theta: 2.0,
                k: None,
            })
            .run();
        table.push_row_strings(vec![
            name.to_owned(),
            j(baseline.extra_energy_j),
            j(etrain.extra_energy_j),
            pct(1.0 - etrain.extra_energy_j / baseline.extra_energy_j),
        ]);
    }
    ExperimentResult::from_tables(vec![table]).headline_cell(
        "wifi_like_saving",
        0,
        -1,
        "saving",
        "%",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saving_shrinks_with_short_tails() {
        let tables = run(true).tables;
        let savings: Vec<f64> = tables[0]
            .to_csv()
            .lines()
            .skip(1)
            .map(|r| {
                r.rsplit(',')
                    .next()
                    .unwrap()
                    .trim_end_matches('%')
                    .parse()
                    .unwrap()
            })
            .collect();
        assert!(
            savings[1] < savings[0],
            "WiFi saving {} should be below 3G saving {}",
            savings[1],
            savings[0]
        );
    }
}
