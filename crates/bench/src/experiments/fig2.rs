//! Fig. 2: the motivating toy example — five scattered 5 KB e-mails within
//! one heartbeat cycle, without and with eTrain.
//!
//! Paper observation: deferring and aggregating the five transmissions
//! onto the second heartbeat saves ≈ 40 % of the transmission energy; the
//! power trace shows the scattered tails collapsing into one.

use crate::ExperimentResult;
use etrain_radio::{RadioParams, Timeline, Transmission};
use etrain_sim::Table;

use super::{j, pct, s};

const EMAIL_BYTES: f64 = 5_000.0;
const BANDWIDTH_BPS: f64 = 450_000.0;

/// Runs the Fig. 2 reproduction.
pub fn run(_quick: bool) -> ExperimentResult {
    let params = RadioParams::galaxy_s4_3g();
    let horizon = 330.0;
    let email_tx_s = EMAIL_BYTES * 8.0 / BANDWIDTH_BPS;
    let hb_tx_s = 74.0 * 8.0 / BANDWIDTH_BPS; // WeChat-sized heartbeat

    // Without eTrain: heartbeats at 0 and 300, e-mails scattered between.
    let mut without = vec![
        Transmission::new(0.0, hb_tx_s),
        Transmission::new(300.0, hb_tx_s),
    ];
    for i in 0..5 {
        without.push(Transmission::new(30.0 + 60.0 * i as f64, email_tx_s));
    }

    // With eTrain: the five e-mails piggyback right after the second
    // heartbeat, back to back.
    let mut with = vec![
        Transmission::new(0.0, hb_tx_s),
        Transmission::new(300.0, hb_tx_s),
    ];
    for i in 0..5 {
        with.push(Transmission::new(
            300.0 + hb_tx_s + i as f64 * email_tx_s,
            email_tx_s,
        ));
    }

    let tl_without = Timeline::from_transmissions(&params, &without, horizon);
    let tl_with = Timeline::from_transmissions(&params, &with, horizon);
    let e_without = tl_without.extra_energy_j();
    let e_with = tl_with.extra_energy_j();

    let mut summary = Table::new(
        "Fig. 2 — one heartbeat cycle, five 5 KB e-mails",
        &["schedule", "transmissions", "extra_energy_j", "saving"],
    );
    summary.push_row_strings(vec![
        "without eTrain (scattered)".to_owned(),
        without.len().to_string(),
        j(e_without),
        "-".to_owned(),
    ]);
    summary.push_row_strings(vec![
        "with eTrain (piggybacked)".to_owned(),
        with.len().to_string(),
        j(e_with),
        pct((e_without - e_with) / e_without),
    ]);

    // The power traces of the two schedules, downsampled to 5 s buckets.
    let mut trace = Table::new(
        "Fig. 2 — power trace (5 s buckets, mW)",
        &["time_s", "without_etrain_mw", "with_etrain_mw"],
    );
    let p_without = tl_without.sample(0.1).downsample(50);
    let p_with = tl_with.sample(0.1).downsample(50);
    for ((t, a), (_, b)) in p_without.iter().zip(p_with.iter()) {
        trace.push_row_strings(vec![s(t), format!("{a:.0}"), format!("{b:.0}")]);
    }
    ExperimentResult::from_tables(vec![summary, trace]).headline_cell(
        "toy_saving",
        0,
        -1,
        "saving",
        "%",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piggybacking_saves_substantial_energy() {
        let tables = run(false).tables;
        let csv = tables[0].to_csv();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        let energy = |row: &str| -> f64 { row.split(',').nth(2).unwrap().parse().unwrap() };
        let without = energy(rows[0]);
        let with = energy(rows[1]);
        // Paper shows ≈ 40 % in its measured toy; the model, with widely
        // scattered e-mails, saves even more.
        assert!(
            with < 0.6 * without,
            "piggybacking should save >40 %: {with} vs {without}"
        );
    }
}
