//! Extension: a full-day, diurnally modulated battery projection.
//!
//! The paper evaluates 2-hour windows; a user cares about a day. This
//! experiment simulates 24 hours of the three IM train apps with an
//! evening-heavy cargo workload (peak 8 PM, 80 % swing), replicated over
//! several seeds, and converts the energy difference into the battery
//! terms of paper Sec. II-D (1700 mAh @ 3.7 V): what fraction of a charge
//! eTrain returns to the user per day, on 3G and on an LTE-DRX radio.

use crate::ExperimentResult;
use etrain_radio::{Battery, RadioParams};
use etrain_sim::{replicate, Scenario, SchedulerKind, Table};
use etrain_trace::diurnal::{generate_diurnal, DiurnalProfile, DAY_S};
use etrain_trace::packets::CargoWorkload;

use super::pct;

/// Runs the day-scale battery projection.
pub fn run(quick: bool) -> ExperimentResult {
    let horizon = if quick { DAY_S / 4.0 } else { DAY_S };
    let seeds: &[u64] = if quick { &[1, 2] } else { &[1, 2, 3, 4, 5] };
    let battery = Battery::paper_reference();

    let mut table = Table::new(
        format!(
            "Extension — {}-hour diurnal battery projection",
            (horizon / 3600.0) as u64
        ),
        &[
            "radio",
            "baseline_j",
            "etrain_j",
            "saved_j",
            "battery_saved",
            "delay_s",
        ],
    );
    for (name, radio) in [
        ("3G (Galaxy S4)", RadioParams::galaxy_s4_3g()),
        ("LTE DRX", RadioParams::lte_drx()),
    ] {
        // Same diurnal packet trace per seed for both schedulers.
        let packets = generate_diurnal(
            &CargoWorkload::paper_default(0.04),
            DiurnalProfile::evening_heavy(),
            0.0,
            horizon,
            99,
        );
        let base_scenario = Scenario::paper_default()
            .duration_secs(horizon as u64)
            .packets(packets)
            .radio(radio);
        let baseline = replicate(
            &base_scenario.clone().scheduler(SchedulerKind::Baseline),
            seeds,
        );
        let etrain = replicate(
            &base_scenario.scheduler(SchedulerKind::ETrain {
                theta: 2.0,
                k: None,
            }),
            seeds,
        );
        let saved = baseline.extra_energy_j.mean - etrain.extra_energy_j.mean;
        table.push_row_strings(vec![
            name.to_owned(),
            baseline.extra_energy_j.display(),
            etrain.extra_energy_j.display(),
            format!("{saved:.1}"),
            pct(battery.fraction_of_capacity(saved)),
            etrain.normalized_delay_s.display(),
        ]);
    }
    ExperimentResult::from_tables(vec![table]).headline_cell("saved_j_3g", 0, 0, "saved_j", "J")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_scale_savings_are_positive_on_both_radios() {
        let tables = run(true).tables;
        for row in tables[0].to_csv().lines().skip(1) {
            let cells: Vec<&str> = row.split(',').collect();
            let saved: f64 = cells[3].parse().unwrap();
            assert!(saved > 0.0, "no saving on {row}");
        }
    }

    #[test]
    fn lte_saves_fewer_joules_than_3g() {
        let tables = run(true).tables;
        let saved: Vec<f64> = tables[0]
            .to_csv()
            .lines()
            .skip(1)
            .map(|r| r.split(',').nth(3).unwrap().parse().unwrap())
            .collect();
        assert!(
            saved[1] < saved[0],
            "LTE ({}) should save fewer joules than 3G ({})",
            saved[1],
            saved[0]
        );
    }
}
