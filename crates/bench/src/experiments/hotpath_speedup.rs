//! Hot-path speedup: the cached steady-state decision and pooled
//! timeline paths vs the retained from-scratch reference recompute.
//!
//! Two micro-harnesses, both driven far past any warm-up:
//!
//! - **Scheduler decisions** — one backlog-heavy drive through
//!   Algorithm 1 with a bounded budget, run twice on identically loaded
//!   schedulers: once on the cached hot path (ϕ snapshot + persistent
//!   scratch + O(1) counters) and once with
//!   [`Scheduler::set_reference_decisions`] selecting the retained
//!   reference path (per-round ϕ recompute, fresh `Vec`s, O(n)
//!   recounts). Released packets are fed back as retries so the backlog
//!   never drains.
//! - **Timeline integration** — repeated rebuild-and-sample cycles over
//!   a long transmission schedule: fresh `Timeline` construction plus
//!   per-sample binary-search lookups (the reference) vs
//!   [`TimelinePool`] reuse plus the linear-walk batch sampler and the
//!   batched per-state time pass.
//!
//! Both comparisons assert bit-for-bit identical outputs before any
//! timing is believed — the speedup headline is only meaningful because
//! the paths are interchangeable. Wall-clock is the minimum over
//! `REPS` repetitions, the standard defense against scheduler noise.

use std::time::Instant;

use crate::ExperimentResult;
use etrain_radio::{RadioParams, RrcState, Timeline, TimelinePool, Transmission};
use etrain_sched::{AppProfile, ETrainConfig, ETrainScheduler, Scheduler, SlotContext};
use etrain_trace::packets::Packet;
use etrain_trace::CargoAppId;

use super::s;

/// Timed repetitions per path; the minimum is reported.
const REPS: usize = 3;

/// Builds the harness scheduler with `backlog` aged packets queued.
fn loaded_scheduler(backlog: usize, k: usize, reference: bool) -> ETrainScheduler {
    let mut sched = ETrainScheduler::new(
        ETrainConfig {
            // The backlog is far past every deadline, so Θ = 0.2 breaches
            // on every slot — at the *first* scanned packet, which is what
            // lets the cached path's partial-sum early exit shine against
            // the reference's unconditional full `P(t)` recompute.
            theta: 0.2,
            k: Some(k),
            slot_s: 1.0,
        },
        AppProfile::paper_trio(60.0),
    );
    sched.set_reference_decisions(reference);
    for i in 0..backlog {
        let packet = Packet {
            id: i as u64,
            app: CargoAppId(i % 3),
            arrival_s: i as f64 * 0.01,
            size_bytes: 2_000,
        };
        sched
            .on_arrival(packet, packet.arrival_s)
            .expect("registered app");
    }
    sched
}

/// Drives `slots` decision slots (heartbeat every 16th slot — the other
/// 15 are Θ-breach slots releasing `K = 1`), feeding every released
/// packet straight back as a retry so the backlog never drains. Returns
/// `(release_count, order_checksum)` — the checksum folds every released
/// id in order, so two drives agree on it iff they released the same
/// packets in the same sequence.
fn drive(sched: &mut ETrainScheduler, slots: usize) -> (u64, u64) {
    let mut count = 0u64;
    let mut checksum = 0u64;
    for slot in 0..slots {
        let now_s = 600.0 + slot as f64;
        let ctx = SlotContext {
            now_s,
            heartbeat_departing: slot % 16 == 0,
            predicted_bandwidth_bps: 450_000.0,
            trains_alive: true,
        };
        let released = sched.on_slot(&ctx);
        for packet in released {
            count += 1;
            checksum = checksum.wrapping_mul(31).wrapping_add(packet.id);
            sched
                .on_tx_failure(packet, now_s)
                .expect("re-admitting a released packet");
        }
    }
    (count, checksum)
}

/// Times the scheduler drive on one decision path (min of [`REPS`]).
fn time_decisions(backlog: usize, k: usize, slots: usize, reference: bool) -> (u64, u64, f64) {
    let mut best_wall = f64::INFINITY;
    let mut outcome = (0, 0);
    for _ in 0..REPS {
        let mut sched = loaded_scheduler(backlog, k, reference);
        let started = Instant::now();
        outcome = drive(&mut sched, slots);
        best_wall = best_wall.min(started.elapsed().as_secs_f64());
        assert_eq!(sched.pending(), backlog, "retries keep the backlog full");
    }
    (outcome.0, outcome.1, best_wall)
}

/// The timeline harness schedule: widely spaced transmissions, so every
/// one contributes a full DCH/tail/FACH/idle segment group.
fn harness_schedule(tx_count: usize) -> (Vec<Transmission>, f64) {
    let txs: Vec<Transmission> = (0..tx_count)
        .map(|i| Transmission::new(i as f64 * 40.0, 0.5))
        .collect();
    let horizon_s = tx_count as f64 * 40.0 + 60.0;
    (txs, horizon_s)
}

/// A cheap per-cycle fingerprint of the sampled trace and the derived
/// aggregates. Intentionally O(1) over the sample buffer: full
/// per-sample bit equality is asserted once, untimed, in `run`; the
/// per-cycle fingerprint only has to pin both timed paths to the same
/// outputs without adding O(samples) work that both paths would share.
fn timeline_fingerprint(samples: &[f64], state_s: [f64; 3], extra_j: f64) -> f64 {
    samples.first().copied().unwrap_or(0.0)
        + samples.last().copied().unwrap_or(0.0)
        + samples.len() as f64
        + state_s.iter().sum::<f64>()
        + extra_j
}

/// One reference rebuild-and-sample cycle: fresh construction, a fresh
/// sample buffer filled by per-sample binary-search lookups, three
/// per-state time scans. Returns the cycle fingerprint.
fn timeline_reference_cycle(
    params: &RadioParams,
    txs: &[Transmission],
    horizon_s: f64,
    dt_s: f64,
) -> f64 {
    let timeline = Timeline::from_transmissions(params, txs, horizon_s);
    let n = (horizon_s / dt_s).ceil() as usize;
    let mut samples = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64 * dt_s;
        samples.push(timeline.state_at(t).power_mw(timeline.params()));
    }
    let state_s = [
        timeline.time_in_state_s(RrcState::Idle),
        timeline.time_in_state_s(RrcState::Fach),
        timeline.time_in_state_s(RrcState::Dch),
    ];
    timeline_fingerprint(&samples, state_s, timeline.extra_energy_j())
}

/// One hot rebuild-and-sample cycle: pooled construction, the linear-walk
/// batch sampler into a reused buffer, the batched per-state time pass.
/// Returns the cycle fingerprint.
fn timeline_hot_cycle(
    pool: &mut TimelinePool,
    buf: &mut Vec<f64>,
    params: &RadioParams,
    txs: &[Transmission],
    horizon_s: f64,
    dt_s: f64,
) -> f64 {
    let timeline = pool.build(params, txs, horizon_s);
    timeline.sample_into(dt_s, buf);
    let state_s = timeline.time_in_states_s();
    let fingerprint = timeline_fingerprint(buf, state_s, timeline.extra_energy_j());
    pool.recycle(timeline);
    fingerprint
}

/// Runs the hot-path speedup comparison.
pub fn run(quick: bool) -> ExperimentResult {
    // --- Scheduler decisions -------------------------------------------
    let (backlog, k, slots) = if quick { (256, 8, 240) } else { (512, 8, 480) };
    let (hot_count, hot_checksum, hot_wall) = time_decisions(backlog, k, slots, false);
    let (ref_count, ref_checksum, ref_wall) = time_decisions(backlog, k, slots, true);
    assert_eq!(
        (hot_count, hot_checksum),
        (ref_count, ref_checksum),
        "the decision paths must release identical sequences"
    );
    let sched_speedup = ref_wall / hot_wall.max(f64::MIN_POSITIVE);

    // --- Timeline integration ------------------------------------------
    let params = RadioParams::galaxy_s4_3g();
    let (tx_count, dt_s, cycles) = if quick {
        (2000, 0.2, 4)
    } else {
        (3000, 0.2, 8)
    };
    let (txs, horizon_s) = harness_schedule(tx_count);

    // Correctness first: the pooled/batched cycle must reproduce the
    // reference bit-for-bit before its timing means anything.
    {
        let reference = Timeline::from_transmissions(&params, &txs, horizon_s);
        let mut pool = TimelinePool::new();
        let pooled = pool.build(&params, &txs, horizon_s);
        assert_eq!(pooled, reference, "pooled construction diverged");
        let mut buf = Vec::new();
        pooled.sample_into(dt_s, &mut buf);
        for (i, &got) in buf.iter().enumerate() {
            let want = reference
                .state_at(i as f64 * dt_s)
                .power_mw(reference.params());
            assert_eq!(got.to_bits(), want.to_bits(), "sample {i} diverged");
        }
    }

    let mut tl_ref_wall = f64::INFINITY;
    let mut ref_total = 0.0;
    for _ in 0..REPS {
        let started = Instant::now();
        ref_total = 0.0;
        for _ in 0..cycles {
            ref_total += timeline_reference_cycle(&params, &txs, horizon_s, dt_s);
        }
        tl_ref_wall = tl_ref_wall.min(started.elapsed().as_secs_f64());
    }
    let mut tl_hot_wall = f64::INFINITY;
    let mut hot_total = 0.0;
    for _ in 0..REPS {
        let mut pool = TimelinePool::new();
        let mut buf = Vec::new();
        let started = Instant::now();
        hot_total = 0.0;
        for _ in 0..cycles {
            hot_total += timeline_hot_cycle(&mut pool, &mut buf, &params, &txs, horizon_s, dt_s);
        }
        tl_hot_wall = tl_hot_wall.min(started.elapsed().as_secs_f64());
    }
    assert_eq!(
        hot_total.to_bits(),
        ref_total.to_bits(),
        "the timeline paths must integrate identically"
    );
    let timeline_speedup = tl_ref_wall / tl_hot_wall.max(f64::MIN_POSITIVE);

    let combined = (ref_wall + tl_ref_wall) / (hot_wall + tl_hot_wall).max(f64::MIN_POSITIVE);

    let mut table = etrain_sim::Table::new(
        format!(
            "Hot-path speedup — cached vs reference (min of {REPS} reps; \
             {backlog} backlog × {slots} slots, k = {k}; \
             {tx_count} tx × {cycles} rebuild/sample cycles)"
        ),
        &["component", "reference_ms", "hot_ms", "speedup"],
    );
    table.push_row_strings(vec![
        "scheduler_decisions".to_owned(),
        s(ref_wall * 1000.0),
        s(hot_wall * 1000.0),
        s(sched_speedup),
    ]);
    table.push_row_strings(vec![
        "timeline_integration".to_owned(),
        s(tl_ref_wall * 1000.0),
        s(tl_hot_wall * 1000.0),
        s(timeline_speedup),
    ]);

    ExperimentResult::from_tables(vec![table])
        .headline("hotpath_speedup", combined, "x")
        .headline("sched_decision_speedup", sched_speedup, "x")
        .headline("timeline_batch_speedup", timeline_speedup, "x")
        .headline(
            "hotpath_ref_wall_ms",
            (ref_wall + tl_ref_wall) * 1000.0,
            "ms",
        )
        .headline(
            "hotpath_hot_wall_ms",
            (hot_wall + tl_hot_wall) * 1000.0,
            "ms",
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_agree_and_the_speedup_is_positive() {
        let result = run(true);
        assert_eq!(result.tables.len(), 1);
        assert_eq!(result.tables[0].len(), 2);
        let speedup = result
            .headlines
            .iter()
            .find(|h| h.metric == "hotpath_speedup")
            .expect("speedup headline")
            .value;
        // Wall-clock ratios are machine-dependent; the sequence- and
        // checksum-equality asserts inside run() are the correctness
        // gate. Here we only pin that the measurement is sane.
        assert!(speedup.is_finite() && speedup > 0.0, "speedup {speedup}");
    }

    #[test]
    fn both_decision_paths_keep_the_backlog_invariant() {
        let mut hot = loaded_scheduler(64, 8, false);
        let mut reference = loaded_scheduler(64, 8, true);
        let a = drive(&mut hot, 50);
        let b = drive(&mut reference, 50);
        assert_eq!(a, b);
        assert_eq!(hot.pending(), 64);
        assert_eq!(reference.pending(), 64);
    }
}
