//! # etrain-core — the eTrain system runtime
//!
//! This crate is the reproduction of the paper's Sec. V: the eTrain
//! *system* that runs on a phone, as opposed to the scheduling *algorithm*
//! (in `etrain-sched`) or the evaluation *testbed* (in `etrain-sim`). It
//! mirrors the Android architecture one-to-one:
//!
//! | Paper (Android)                              | This crate                      |
//! |----------------------------------------------|---------------------------------|
//! | Xposed hook on train apps' heartbeat code    | [`TrainHandle::heartbeat`]      |
//! | Heartbeat Monitor module                     | [`ETrainCore`] + `etrain-hb`    |
//! | eTrain Scheduler module (Algorithm 1)        | [`ETrainCore`] + `etrain-sched` |
//! | eTrain Broadcast (`BroadcastReceiver` IPC)   | [`Bus`] (crossbeam channels)    |
//! | Cargo app registration with profile          | [`ETrainSystem::cargo_client`]  |
//! | Transmit request with meta-data              | [`TransmitRequest`]             |
//! | Transmission decision delivered to cargo app | [`TransmitDecision`]            |
//!
//! Two layers are provided:
//!
//! - [`ETrainCore`] — a deterministic, synchronous ("sans-IO") core: feed
//!   it heartbeats, requests and clock ticks, get back decisions. All the
//!   system logic lives here and is directly unit-testable.
//! - [`ETrainSystem`] — a threaded runtime around the core with a real
//!   clock (optionally time-scaled so a 300-second heartbeat cycle can be
//!   exercised in milliseconds), broadcasting decisions to subscribed
//!   cargo clients exactly like Android's one-to-many `Broadcast`.
//!
//! # Example (deterministic core)
//!
//! ```
//! use etrain_core::{CoreConfig, ETrainCore, TransmitRequest};
//! use etrain_sched::{AppProfile, CostProfile};
//!
//! # fn main() -> Result<(), etrain_core::CoreError> {
//! let mut core = ETrainCore::new(CoreConfig::default());
//! let train = core.register_train("WeChat");
//! let mail = core.register_cargo(AppProfile::new("Mail", CostProfile::mail(60.0)));
//!
//! // The Xposed hook fires on each heartbeat; requests queue in between.
//! core.on_heartbeat(train, 0.0)?;
//! let admission = core.submit(mail, TransmitRequest::upload(5_000), 5.0)?;
//! let id = admission.id().expect("unbounded admission always admits");
//! assert!(core.tick(6.0)?.is_empty()); // deferred: cost below Θ, no train yet
//!
//! let decisions = core.on_heartbeat(train, 270.0)?; // next train departs
//! assert_eq!(decisions.len(), 1);
//! assert_eq!(decisions[0].request, id);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Overload-control hardening: user-reachable runtime paths must not panic
// on `unwrap`/`expect`; failures surface as typed `CoreError`s or degrade
// gracefully. Tests (and doctests, which compile as separate crates) are
// exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod bus;
mod command;
mod core_impl;
mod error;
mod meter;
mod request;
mod system;

pub use bus::Bus;
pub use command::{CommandOutcome, CoreCommand};
pub use core_impl::{CoreConfig, CoreStats, ETrainCore};
pub use error::CoreError;
pub use meter::EnergyMeter;
pub use request::{
    Admission, Direction, RequestId, RetryVerdict, TransmitDecision, TransmitRequest, TxResult,
};
pub use system::{CargoClient, ETrainSystem, ShutdownReport, SystemConfig, TrainHandle};

// The retry policy is configured through `CoreConfig::retry`; re-exported
// so embedders don't need a direct `etrain-sched` dependency for it. The
// admission types configure `CoreConfig::admission` the same way.
pub use etrain_sched::{AdmissionConfig, RetryPolicy, ShedPolicy};

// Re-exported so journaling consumers ([`ETrainCore::enable_journal`])
// can inspect recorded events with this crate alone.
pub use etrain_obs::{Event, EventRecord, Journal};
