//! The write-ahead log: segmented, checksummed, crash-truncating.
//!
//! On disk a WAL is a directory of segments `wal-000000.seg`,
//! `wal-000001.seg`, … in the framed format of [`etrain_obs::durable`]
//! (magic + `[len | crc32 | payload]` frames), each payload one
//! JSON-serialized [`SvcCommand`]. Appends go to the highest segment; a
//! segment that crosses [`WalConfig::segment_bytes`] is closed and a new
//! one started, so no single file grows without bound and recovery I/O
//! is localized.
//!
//! Recovery ([`Wal::recover`]) scans every segment in order, keeps
//! exactly the prefix of frames whose checksums verify, and *repairs the
//! directory in place*: a torn or corrupt tail is truncated back to the
//! last valid frame, a segment with no valid magic is set aside as
//! `.bad`, and any segments after the first damaged one are set aside
//! too (they were written after the damage point and cannot be trusted
//! to be causally consistent). Damage is therefore survived, reported,
//! and never replayed.
//!
//! The fault hook ([`WalFault`], env `ETRAIN_WAL_FAULT=torn@N|short@N|crc@N`)
//! makes the writer damage its own tail at a chosen record index — the
//! deterministic stand-in for SIGKILL landing mid-`write` that the chaos
//! harness kills processes with.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use etrain_obs::durable::{scan_segment, AppendFault, FrameWriter, TailStatus};
use serde::{Deserialize, Serialize};

use crate::error::SvcError;
use crate::state::SvcCommand;

/// Environment variable naming the WAL directory.
pub const WAL_ENV: &str = "ETRAIN_WAL";

/// Environment variable arming the append fault hook
/// (`torn@N`, `short@N`, or `crc@N`).
pub const WAL_FAULT_ENV: &str = "ETRAIN_WAL_FAULT";

/// The kind of damage the fault hook injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Torn append: header plus only half the payload bytes.
    Torn,
    /// Short header: the append dies four bytes in.
    ShortHeader,
    /// Checksum flip: full frame, provably wrong CRC.
    FlipChecksum,
}

/// An armed append fault: damage the frame of record `at_record`
/// (zero-based over the WAL's lifetime) instead of writing it cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalFault {
    /// Zero-based record index the hook fires on.
    pub at_record: u64,
    /// What damage to inject.
    pub kind: FaultKind,
}

impl WalFault {
    /// Parses the `ETRAIN_WAL_FAULT` syntax: `torn@N`, `short@N`, or
    /// `crc@N`.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed spec.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (kind_s, at_s) = spec
            .trim()
            .split_once('@')
            .ok_or_else(|| format!("fault spec {spec:?} is not of the form kind@record"))?;
        let kind = match kind_s.to_ascii_lowercase().as_str() {
            "torn" => FaultKind::Torn,
            "short" => FaultKind::ShortHeader,
            "crc" => FaultKind::FlipChecksum,
            other => {
                return Err(format!(
                    "unknown fault kind {other:?} (expected torn, short, or crc)"
                ))
            }
        };
        let at_record: u64 = at_s
            .parse()
            .map_err(|_| format!("fault record index {at_s:?} is not a non-negative integer"))?;
        Ok(WalFault { at_record, kind })
    }

    /// Strict [`WAL_FAULT_ENV`] reader: `Ok(None)` when unset or empty,
    /// the parsed fault otherwise, `Err` for a malformed value.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed spec.
    pub fn try_from_env() -> Result<Option<Self>, String> {
        match std::env::var(WAL_FAULT_ENV) {
            Err(_) => Ok(None),
            Ok(raw) if raw.trim().is_empty() => Ok(None),
            Ok(raw) => WalFault::parse(&raw)
                .map(Some)
                .map_err(|e| format!("invalid {WAL_FAULT_ENV}: {e}")),
        }
    }
}

/// Lenient [`WAL_FAULT_ENV`] reader for library contexts: malformed
/// specs warn once on stderr and fall back to `None` (binaries use
/// [`WalFault::try_from_env`] and fail fast).
pub fn fault_from_env() -> Option<WalFault> {
    WalFault::try_from_env().unwrap_or_else(|reason| {
        static WARN_ONCE: std::sync::Once = std::sync::Once::new();
        WARN_ONCE.call_once(|| {
            eprintln!("warning: ignoring {reason}; no fault armed");
        });
        None
    })
}

/// Configuration of a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the segments (created if absent).
    pub dir: PathBuf,
    /// Rotation threshold: a segment that reaches this many bytes is
    /// closed and a fresh one started.
    pub segment_bytes: u64,
    /// Whether to `sync_data` the segment after every append. The
    /// daemon keeps this on; in-process harnesses may trade durability
    /// for speed.
    pub fsync: bool,
    /// The armed fault hook, if any.
    pub fault: Option<WalFault>,
}

impl WalConfig {
    /// A config rooted at `dir` with 1 MiB segments, fsync on, no fault.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            segment_bytes: 1024 * 1024,
            fsync: true,
            fault: None,
        }
    }
}

/// Result of one append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Append {
    /// The record is durably framed.
    Ok,
    /// The fault hook fired: the tail is damaged and the process must
    /// now crash.
    FaultInjected,
}

/// What recovery found and repaired in a WAL directory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalRecoveryReport {
    /// Segments that contributed replayable records.
    pub segments: usize,
    /// Records recovered (every one checksum-verified).
    pub records: u64,
    /// Damaged tail bytes truncated away.
    pub truncated_bytes: u64,
    /// Segments set aside as `.bad` (unreadable magic, or written after
    /// a damaged segment).
    pub segments_set_aside: usize,
    /// Tail verdict of the last contributing segment.
    pub tail: TailStatus,
    /// Payloads that verified but did not decode as commands.
    pub undecodable: u64,
}

/// The outcome of scanning a WAL directory: the replayable command
/// stream plus what the writer needs to resume appending.
#[derive(Debug)]
pub struct WalRecovery {
    /// The recovered commands, in append order.
    pub commands: Vec<SvcCommand>,
    /// What was found and repaired.
    pub report: WalRecoveryReport,
    /// The segment index appends should continue in (the last surviving
    /// segment, or 0 for an empty directory).
    resume_segment: u64,
    /// Frames and bytes already in that segment (`None` if it must be
    /// created).
    resume_state: Option<(u64, u64)>,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:06}.seg"))
}

fn list_segments(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    if !dir.exists() {
        return Ok(segments);
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(idx) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".seg"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            segments.push((idx, entry.path()));
        }
    }
    segments.sort_by_key(|(idx, _)| *idx);
    Ok(segments)
}

fn set_aside(path: &Path) -> std::io::Result<()> {
    let mut bad = path.as_os_str().to_owned();
    bad.push(".bad");
    std::fs::rename(path, PathBuf::from(bad))
}

/// Scans (and repairs) the WAL directory, returning the verified command
/// stream. Damage never fails recovery: torn and corrupt tails are
/// truncated to the last valid frame, unreadable segments are set aside.
///
/// # Errors
///
/// Only genuine I/O failures (permissions, disappearing files) and
/// [`SvcError::UndecodableRecord`] — a payload whose checksum verified
/// but that is not a serialized command, meaning the directory was not
/// written by this service.
pub fn recover(dir: &Path) -> Result<WalRecovery, SvcError> {
    let segments = list_segments(dir)?;
    let mut commands = Vec::new();
    let mut report = WalRecoveryReport {
        segments: 0,
        records: 0,
        truncated_bytes: 0,
        segments_set_aside: 0,
        tail: TailStatus::Clean,
        undecodable: 0,
    };
    let mut resume_segment = 0u64;
    let mut resume_state: Option<(u64, u64)> = None;
    let mut damage_seen = false;
    for (index, path) in &segments {
        if damage_seen {
            // Everything after the first damaged segment postdates the
            // damage point; set it aside rather than replay a stream
            // with a causal hole in the middle.
            set_aside(path)?;
            report.segments_set_aside += 1;
            continue;
        }
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let scan = scan_segment(&bytes);
        match scan.tail {
            TailStatus::BadMagic => {
                set_aside(path)?;
                report.segments_set_aside += 1;
                report.tail = TailStatus::BadMagic;
                damage_seen = true;
                continue;
            }
            TailStatus::Clean => {}
            TailStatus::Torn { valid_bytes } | TailStatus::Corrupt { valid_bytes } => {
                report.truncated_bytes += bytes.len() as u64 - valid_bytes;
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(valid_bytes)?;
                file.sync_data()?;
                damage_seen = true;
            }
        }
        report.tail = scan.tail;
        report.segments += 1;
        let frames = scan.payloads.len() as u64;
        resume_segment = *index;
        resume_state = Some((frames, scan.valid_bytes()));
        for payload in &scan.payloads {
            let command = std::str::from_utf8(payload)
                .ok()
                .and_then(|s| serde_json::from_str::<SvcCommand>(s).ok());
            match command {
                Some(command) => {
                    commands.push(command);
                    report.records += 1;
                }
                None => {
                    return Err(SvcError::UndecodableRecord {
                        index: report.records,
                    })
                }
            }
        }
    }
    if segments.is_empty() {
        resume_state = None;
    }
    Ok(WalRecovery {
        commands,
        report,
        resume_segment,
        resume_state,
    })
}

/// The append handle over a recovered (or fresh) WAL directory.
#[derive(Debug)]
pub struct Wal {
    cfg: WalConfig,
    writer: FrameWriter<File>,
    segment_index: u64,
    /// Records ever appended across all segments (continues the
    /// recovered count, so the fault hook's `at_record` is an absolute
    /// index into the journal's lifetime).
    records: u64,
}

impl Wal {
    /// Opens the WAL for appending after [`recover`], resuming the last
    /// surviving segment (or creating `wal-000000.seg` in a fresh
    /// directory).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-open failures.
    pub fn open(cfg: WalConfig, recovery: &WalRecovery) -> Result<Self, SvcError> {
        std::fs::create_dir_all(&cfg.dir)?;
        let (writer, segment_index) = match recovery.resume_state {
            Some((frames, valid_bytes)) => {
                let path = segment_path(&cfg.dir, recovery.resume_segment);
                let file = OpenOptions::new().append(true).open(path)?;
                (
                    FrameWriter::resume(file, frames, valid_bytes),
                    recovery.resume_segment,
                )
            }
            None => {
                let path = segment_path(&cfg.dir, 0);
                let file = OpenOptions::new().create(true).append(true).open(path)?;
                (FrameWriter::create(file)?, 0)
            }
        };
        Ok(Wal {
            cfg,
            writer,
            segment_index,
            records: recovery.report.records,
        })
    }

    /// Appends one command, rotating the segment first if the current
    /// one is at the size threshold. When the armed fault hook matches
    /// this record index, the frame is damaged on purpose and
    /// [`Append::FaultInjected`] returned — the caller must then crash
    /// without applying the command.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; after an I/O error the tail must be
    /// assumed torn (recovery handles exactly that).
    pub fn append(&mut self, command: &SvcCommand) -> Result<Append, SvcError> {
        let payload = serde_json::to_string(command)
            .map_err(|e| SvcError::Io(std::io::Error::new(std::io::ErrorKind::InvalidData, e)))?;
        if self.writer.bytes() >= self.cfg.segment_bytes && self.writer.frames() > 0 {
            self.rotate()?;
        }
        if let Some(fault) = self.cfg.fault {
            if fault.at_record == self.records {
                let append_fault = match fault.kind {
                    FaultKind::Torn => AppendFault::TornPayload {
                        keep_bytes: payload.len() / 2,
                    },
                    FaultKind::ShortHeader => AppendFault::ShortHeader,
                    FaultKind::FlipChecksum => AppendFault::FlipChecksum,
                };
                self.writer
                    .append_faulty(payload.as_bytes(), append_fault)?;
                self.sync()?;
                return Ok(Append::FaultInjected);
            }
        }
        self.writer.append(payload.as_bytes())?;
        if self.cfg.fsync {
            self.sync()?;
        }
        self.records += 1;
        Ok(Append::Ok)
    }

    fn rotate(&mut self) -> Result<(), SvcError> {
        self.writer.flush()?;
        self.writer.get_mut().sync_data()?;
        self.segment_index += 1;
        let path = segment_path(&self.cfg.dir, self.segment_index);
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(path)?;
        self.writer = FrameWriter::create(file)?;
        Ok(())
    }

    /// Flushes and `sync_data`s the current segment.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn sync(&mut self) -> Result<(), SvcError> {
        self.writer.flush()?;
        self.writer.get_mut().sync_data()?;
        Ok(())
    }

    /// Records durably appended over the WAL's lifetime.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The segment currently being appended to.
    pub fn segment_index(&self) -> u64 {
        self.segment_index
    }
}

/// The last clean checkpoint: how many journal records it covers and the
/// state fingerprint after applying exactly that prefix.
///
/// Checkpoints are *verification* artifacts, not snapshots: recovery
/// always replays the full journal, then checks that the state it passed
/// through at `records` matches `fingerprint`. A mismatch means the
/// verified-checksum prefix is inconsistent with history, and recovery
/// refuses to proceed silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Journal records covered.
    pub records: u64,
    /// [`crate::ServiceState::fingerprint`] after that prefix.
    pub fingerprint: u64,
}

const CHECKPOINT_FILE: &str = "checkpoint.json";

/// Atomically writes the checkpoint (tmp + rename, synced).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_checkpoint(dir: &Path, checkpoint: Checkpoint) -> Result<(), SvcError> {
    std::fs::create_dir_all(dir)?;
    let json = serde_json::to_string(&checkpoint)
        .map_err(|e| SvcError::Io(std::io::Error::new(std::io::ErrorKind::InvalidData, e)))?;
    let tmp = dir.join("checkpoint.json.tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(json.as_bytes())?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, dir.join(CHECKPOINT_FILE))?;
    Ok(())
}

/// Reads the last checkpoint, if one exists and parses. An unparseable
/// checkpoint is treated as absent (the rename is atomic, so this only
/// happens under external interference; recovery then simply has nothing
/// to verify against).
pub fn read_checkpoint(dir: &Path) -> Option<Checkpoint> {
    let raw = std::fs::read_to_string(dir.join(CHECKPOINT_FILE)).ok()?;
    serde_json::from_str(&raw).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use etrain_core::CoreCommand;

    fn tmp_dir(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("etrain-wal-test-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tick(now_s: f64) -> SvcCommand {
        SvcCommand::Core(CoreCommand::Tick { now_s })
    }

    fn open_fresh(dir: &Path, cfg: WalConfig) -> Wal {
        let recovery = recover(dir).unwrap();
        Wal::open(cfg, &recovery).unwrap()
    }

    #[test]
    fn append_and_recover_round_trips() {
        let dir = tmp_dir("roundtrip");
        let mut wal = open_fresh(&dir, WalConfig::new(&dir));
        for i in 0..5 {
            assert_eq!(wal.append(&tick(i as f64)).unwrap(), Append::Ok);
        }
        drop(wal);
        let recovery = recover(&dir).unwrap();
        assert_eq!(recovery.report.records, 5);
        assert!(recovery.report.tail.is_clean());
        assert_eq!(recovery.commands.len(), 5);
        assert_eq!(recovery.commands[3], tick(3.0));
    }

    #[test]
    fn rotation_spreads_records_across_segments() {
        let dir = tmp_dir("rotate");
        let mut cfg = WalConfig::new(&dir);
        cfg.segment_bytes = 64; // force rotation every couple of records
        let mut wal = open_fresh(&dir, cfg);
        for i in 0..20 {
            wal.append(&tick(i as f64)).unwrap();
        }
        assert!(wal.segment_index() >= 2, "expected multiple segments");
        drop(wal);
        let recovery = recover(&dir).unwrap();
        assert_eq!(recovery.report.records, 20);
        assert!(recovery.report.segments >= 3);
        let times: Vec<f64> = recovery
            .commands
            .iter()
            .map(|c| match c {
                SvcCommand::Core(CoreCommand::Tick { now_s }) => *now_s,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(times, (0..20).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn recovery_resumes_appends_in_place() {
        let dir = tmp_dir("resume");
        let mut wal = open_fresh(&dir, WalConfig::new(&dir));
        wal.append(&tick(0.0)).unwrap();
        drop(wal);
        let recovery = recover(&dir).unwrap();
        let mut wal = Wal::open(WalConfig::new(&dir), &recovery).unwrap();
        assert_eq!(wal.records(), 1);
        wal.append(&tick(1.0)).unwrap();
        drop(wal);
        let recovery = recover(&dir).unwrap();
        assert_eq!(recovery.report.records, 2);
        assert_eq!(recovery.report.segments, 1, "no spurious new segment");
    }

    #[test]
    fn fault_hook_damages_tail_and_recovery_truncates_it() {
        for (kind, expect_torn) in [
            (FaultKind::Torn, true),
            (FaultKind::ShortHeader, true),
            (FaultKind::FlipChecksum, false),
        ] {
            let dir = tmp_dir("fault");
            let mut cfg = WalConfig::new(&dir);
            cfg.fault = Some(WalFault { at_record: 2, kind });
            let mut wal = open_fresh(&dir, cfg);
            wal.append(&tick(0.0)).unwrap();
            wal.append(&tick(1.0)).unwrap();
            assert_eq!(wal.append(&tick(2.0)).unwrap(), Append::FaultInjected);
            drop(wal); // the simulated crash
            let recovery = recover(&dir).unwrap();
            assert_eq!(
                recovery.report.records, 2,
                "{kind:?}: damaged record must not replay"
            );
            assert!(recovery.report.truncated_bytes > 0, "{kind:?}");
            match recovery.report.tail {
                TailStatus::Torn { .. } => assert!(expect_torn, "{kind:?}"),
                TailStatus::Corrupt { .. } => assert!(!expect_torn, "{kind:?}"),
                other => panic!("{kind:?}: unexpected tail {other:?}"),
            }
            // After truncation the directory is clean again and appends
            // continue from the repaired tail.
            let mut wal = Wal::open(WalConfig::new(&dir), &recovery).unwrap();
            wal.append(&tick(2.0)).unwrap();
            drop(wal);
            let again = recover(&dir).unwrap();
            assert_eq!(again.report.records, 3);
            assert!(again.report.tail.is_clean());
            assert_eq!(again.report.truncated_bytes, 0);
        }
    }

    #[test]
    fn bad_magic_segment_is_set_aside() {
        let dir = tmp_dir("badmagic");
        let mut wal = open_fresh(&dir, WalConfig::new(&dir));
        wal.append(&tick(0.0)).unwrap();
        drop(wal);
        std::fs::write(dir.join("wal-000001.seg"), b"garbage not a segment").unwrap();
        let recovery = recover(&dir).unwrap();
        assert_eq!(recovery.report.records, 1, "good prefix survives");
        assert_eq!(recovery.report.segments_set_aside, 1);
        assert!(dir.join("wal-000001.seg.bad").exists());
    }

    #[test]
    fn segments_after_damage_are_set_aside() {
        let dir = tmp_dir("afterdamage");
        let mut cfg = WalConfig::new(&dir);
        cfg.segment_bytes = 64;
        let mut wal = open_fresh(&dir, cfg);
        for i in 0..10 {
            wal.append(&tick(i as f64)).unwrap();
        }
        assert!(wal.segment_index() >= 2);
        drop(wal);
        // Corrupt the middle segment's tail byte.
        let victim = segment_path(&dir, 1);
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();
        let recovery = recover(&dir).unwrap();
        assert!(recovery.report.records < 10);
        assert!(recovery.report.segments_set_aside >= 1);
        assert!(recovery.report.truncated_bytes > 0);
        // The stream is still a causally consistent prefix.
        let times: Vec<f64> = recovery
            .commands
            .iter()
            .map(|c| match c {
                SvcCommand::Core(CoreCommand::Tick { now_s }) => *now_s,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        let expect: Vec<f64> = (0..times.len()).map(|i| i as f64).collect();
        assert_eq!(times, expect);
    }

    #[test]
    fn checkpoint_round_trips_and_survives_garbage() {
        let dir = tmp_dir("ckpt");
        assert_eq!(read_checkpoint(&dir), None);
        let ckpt = Checkpoint {
            records: 17,
            fingerprint: 0xDEAD_BEEF_0123_4567,
        };
        write_checkpoint(&dir, ckpt).unwrap();
        assert_eq!(read_checkpoint(&dir), Some(ckpt));
        std::fs::write(dir.join("checkpoint.json"), b"{not json").unwrap();
        assert_eq!(read_checkpoint(&dir), None);
    }

    #[test]
    fn fault_spec_parsing() {
        assert_eq!(
            WalFault::parse("torn@7").unwrap(),
            WalFault {
                at_record: 7,
                kind: FaultKind::Torn
            }
        );
        assert_eq!(
            WalFault::parse(" CRC@0 ").unwrap().kind,
            FaultKind::FlipChecksum
        );
        assert_eq!(
            WalFault::parse("short@12").unwrap().kind,
            FaultKind::ShortHeader
        );
        assert!(WalFault::parse("torn").is_err());
        assert!(WalFault::parse("melt@3").is_err());
        assert!(WalFault::parse("torn@x").is_err());
    }
}
