use crate::params::RadioParams;
use crate::tail::tail_energy_j;
use crate::timeline::RrcState;

/// Online RRC state machine with incremental energy accounting.
///
/// [`Radio`] is the event-driven counterpart of [`Timeline`]: a simulator
/// drives it forward with [`Radio::advance_to`] and brackets busy periods
/// with [`Radio::start_transmission`] / [`Radio::end_transmission`]. Energy
/// above idle is accrued continuously and split into *transmission* energy
/// (accrued while busy) and *tail* energy (accrued while lingering in DCH or
/// FACH after a transmission) — the two components the paper's evaluation
/// reports separately.
///
/// Property tests in this crate assert that driving a [`Radio`] with a
/// transmission schedule yields the same total as
/// [`Timeline::extra_energy_j`].
///
/// [`Timeline`]: crate::Timeline
/// [`Timeline::extra_energy_j`]: crate::Timeline::extra_energy_j
///
/// # Examples
///
/// ```
/// use etrain_radio::{Radio, RadioParams, RrcState};
///
/// let mut radio = Radio::new(RadioParams::galaxy_s4_3g());
/// radio.start_transmission(10.0);
/// radio.end_transmission(11.0);
/// radio.advance_to(100.0);
/// assert_eq!(radio.state(), RrcState::Idle);
/// // 1 s of busy DCH plus one full wasted tail:
/// let expected = 0.7 + radio.params().full_tail_energy_j();
/// assert!((radio.extra_energy_j() - expected).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Radio {
    params: RadioParams,
    now_s: f64,
    busy: bool,
    last_tx_end_s: Option<f64>,
    transmission_energy_j: f64,
    tail_energy_j: f64,
    busy_time_s: f64,
    promotions: usize,
}

impl Radio {
    /// Creates an idle radio at time 0.
    pub fn new(params: RadioParams) -> Self {
        Radio {
            params,
            now_s: 0.0,
            busy: false,
            last_tx_end_s: None,
            transmission_energy_j: 0.0,
            tail_energy_j: 0.0,
            busy_time_s: 0.0,
            promotions: 0,
        }
    }

    /// The radio's parameter set.
    pub fn params(&self) -> &RadioParams {
        &self.params
    }

    /// Current simulation time in seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Whether a transmission is in progress.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Current RRC state.
    pub fn state(&self) -> RrcState {
        if self.busy {
            return RrcState::Dch;
        }
        match self.last_tx_end_s {
            None => RrcState::Idle,
            Some(end) => {
                let elapsed = self.now_s - end;
                if elapsed < self.params.delta_dch_s() {
                    RrcState::Dch
                } else if elapsed < self.params.tail_time_s() {
                    RrcState::Fach
                } else {
                    RrcState::Idle
                }
            }
        }
    }

    /// Advances the clock to `t_s`, accruing energy for the elapsed span.
    ///
    /// # Panics
    ///
    /// Panics if `t_s` is earlier than the current time or not finite
    /// (time must be monotone in an event-driven simulation).
    pub fn advance_to(&mut self, t_s: f64) {
        assert!(t_s.is_finite(), "time must be finite");
        assert!(
            t_s >= self.now_s - 1e-12,
            "time must not go backwards: {} -> {}",
            self.now_s,
            t_s
        );
        let t_s = t_s.max(self.now_s);
        if self.busy {
            let dt = t_s - self.now_s;
            self.transmission_energy_j += self.params.dch_extra_mw() / 1000.0 * dt;
            self.busy_time_s += dt;
        } else if let Some(end) = self.last_tx_end_s {
            // Cumulative tail energy from the end of the last transmission:
            // E_tail(Δ) is exactly the integral of the tail power profile.
            let before = tail_energy_j(&self.params, self.now_s - end);
            let after = tail_energy_j(&self.params, t_s - end);
            self.tail_energy_j += after - before;
        }
        self.now_s = t_s;
    }

    /// Marks the start of a transmission at `t_s` (advancing the clock).
    ///
    /// Starting while already busy is allowed and is a no-op besides the
    /// clock advance: overlapping logical transfers share the channel.
    ///
    /// # Panics
    ///
    /// Panics if `t_s` is earlier than the current time.
    pub fn start_transmission(&mut self, t_s: f64) {
        self.advance_to(t_s);
        if !self.busy && self.state() == RrcState::Idle {
            // IDLE→DCH state promotion: the signaling event fast dormancy
            // multiplies (paper Sec. VII) and the tail exists to avoid.
            self.promotions += 1;
        }
        self.busy = true;
    }

    /// Marks the end of the in-progress transmission at `t_s`.
    ///
    /// # Panics
    ///
    /// Panics if the radio is not busy, or if `t_s` is earlier than the
    /// current time.
    pub fn end_transmission(&mut self, t_s: f64) {
        assert!(self.busy, "end_transmission called while not transmitting");
        self.advance_to(t_s);
        self.busy = false;
        self.last_tx_end_s = Some(self.now_s);
    }

    /// Extra energy above idle accrued while transmitting, in joules.
    pub fn transmission_energy_j(&self) -> f64 {
        self.transmission_energy_j
    }

    /// Extra energy above idle accrued in tails, in joules.
    pub fn tail_energy_j(&self) -> f64 {
        self.tail_energy_j
    }

    /// Total extra energy above idle, in joules.
    pub fn extra_energy_j(&self) -> f64 {
        self.transmission_energy_j + self.tail_energy_j
    }

    /// Total energy including the idle baseline since time 0, in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.extra_energy_j() + self.params.idle_mw() / 1000.0 * self.now_s
    }

    /// Cumulative time spent transmitting, in seconds.
    pub fn busy_time_s(&self) -> f64 {
        self.busy_time_s
    }

    /// Number of IDLE→DCH state promotions so far. Each promotion is a
    /// signaling event with real latency on a 3G network; the tail
    /// mechanism exists to bound this count, and "fast dormancy" trades
    /// tail energy for more promotions (paper Sec. VII).
    pub fn promotions(&self) -> usize {
        self.promotions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{Timeline, Transmission};

    fn params() -> RadioParams {
        RadioParams::galaxy_s4_3g()
    }

    #[test]
    fn fresh_radio_is_idle_and_free() {
        let mut radio = Radio::new(params());
        radio.advance_to(1000.0);
        assert_eq!(radio.state(), RrcState::Idle);
        assert_eq!(radio.extra_energy_j(), 0.0);
        assert!((radio.total_energy_j() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn state_walks_through_tail_phases() {
        let mut radio = Radio::new(params());
        radio.start_transmission(0.0);
        assert_eq!(radio.state(), RrcState::Dch);
        radio.end_transmission(1.0);
        radio.advance_to(5.0);
        assert_eq!(radio.state(), RrcState::Dch);
        radio.advance_to(13.0);
        assert_eq!(radio.state(), RrcState::Fach);
        radio.advance_to(19.0);
        assert_eq!(radio.state(), RrcState::Idle);
    }

    #[test]
    fn energy_split_between_transmission_and_tail() {
        let mut radio = Radio::new(params());
        radio.start_transmission(0.0);
        radio.end_transmission(2.0);
        radio.advance_to(100.0);
        assert!((radio.transmission_energy_j() - 1.4).abs() < 1e-9);
        assert!((radio.tail_energy_j() - params().full_tail_energy_j()).abs() < 1e-9);
        assert!((radio.busy_time_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reused_tail_accrues_partial_energy() {
        let mut radio = Radio::new(params());
        radio.start_transmission(0.0);
        radio.end_transmission(1.0);
        // Second transmission 4 s later: only 4 s of DCH tail paid.
        radio.start_transmission(5.0);
        radio.end_transmission(6.0);
        radio.advance_to(200.0);
        let expected_tail = 0.7 * 4.0 + params().full_tail_energy_j();
        assert!((radio.tail_energy_j() - expected_tail).abs() < 1e-9);
    }

    #[test]
    fn online_matches_offline_timeline() {
        let p = params();
        let txs = [
            Transmission::new(2.0, 0.5),
            Transmission::new(8.0, 1.5),
            Transmission::new(40.0, 0.2),
            Transmission::new(52.0, 0.3),
        ];
        let horizon = 300.0;
        let mut radio = Radio::new(p.clone());
        for tx in &txs {
            radio.start_transmission(tx.start_s);
            radio.end_transmission(tx.end_s());
        }
        radio.advance_to(horizon);
        let timeline = Timeline::from_transmissions(&p, &txs, horizon);
        assert!(
            (radio.extra_energy_j() - timeline.extra_energy_j()).abs() < 1e-9,
            "online {} vs offline {}",
            radio.extra_energy_j(),
            timeline.extra_energy_j()
        );
    }

    #[test]
    fn overlapping_start_is_tolerated() {
        let mut radio = Radio::new(params());
        radio.start_transmission(0.0);
        radio.start_transmission(0.5); // logical overlap
        radio.end_transmission(1.0);
        radio.advance_to(50.0);
        assert!((radio.transmission_energy_j() - 0.7).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "time must not go backwards")]
    fn time_travel_panics() {
        let mut radio = Radio::new(params());
        radio.advance_to(10.0);
        radio.advance_to(5.0);
    }

    #[test]
    #[should_panic(expected = "not transmitting")]
    fn end_without_start_panics() {
        let mut radio = Radio::new(params());
        radio.end_transmission(1.0);
    }
}
