//! The seeded campaign driver: many chaos cases swept through the grid
//! runner under the strict oracle, every failure collected.
//!
//! The campaign reuses the production execution path on purpose — cases
//! become [`RunSpec`]s and run through [`RunGrid::run_with_checkpoints`]
//! on the worker pool, so panics are isolated per job, strict-mode oracle
//! violations surface as typed errors, and the sweep itself exercises the
//! checkpoint/resume machinery it is meant to stress. Health-ladder logs
//! are audited from the completed reports afterwards.

use etrain_sim::oracle::OracleMode;
use etrain_sim::{RunError, RunGrid, RunSpec, ScenarioError};
use serde::{Deserialize, Serialize};

use crate::case::{violation_name, CaseFailure, ChaosCase};

/// A failing case paired with why it failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// The case that failed (replayable as-is).
    pub case: ChaosCase,
    /// What went wrong.
    pub failure: CaseFailure,
}

/// The outcome of one campaign sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Cases swept.
    pub cases_run: usize,
    /// Every failure, in grid order.
    pub findings: Vec<Finding>,
}

impl CampaignReport {
    /// `true` when no case failed.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Builds the campaign's case list: `count` consecutive seeds starting at
/// `start_seed`, faults on odd seeds, scheduler rotated per seed, engine
/// kernel alternating by seed parity. `quick` caps each horizon at 600 s
/// so wide sweeps stay cheap.
pub fn campaign_cases(start_seed: u64, count: u64, quick: bool) -> Vec<ChaosCase> {
    (start_seed..start_seed.saturating_add(count))
        .map(|seed| {
            let mut case = ChaosCase::from_seed(seed);
            if quick {
                case.plan.horizon_s = case.plan.horizon_s.min(600);
            }
            case
        })
        .collect()
}

/// Sweeps `cases` through the grid runner in [`OracleMode::Strict`] on
/// `jobs` workers, collecting every oracle violation, panic, invalid
/// scenario, and health-ladder anomaly.
pub fn run_campaign(cases: &[ChaosCase], jobs: usize) -> CampaignReport {
    // Scenario construction can itself assert on degenerate knobs, so
    // build each spec under isolation; a case whose scenario cannot even
    // be built becomes a panic finding instead of tearing down the sweep.
    let mut findings = Vec::new();
    let mut case_of_spec = Vec::with_capacity(cases.len());
    let mut specs = Vec::with_capacity(cases.len());
    for (index, case) in cases.iter().enumerate() {
        let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case.plan
                .scenario()
                .scheduler(case.kind)
                .engine(case.engine)
        }));
        match built {
            Ok(scenario) => {
                case_of_spec.push(index);
                specs.push(RunSpec::new(case.label(), scenario));
            }
            Err(payload) => findings.push(Finding {
                case: case.clone(),
                failure: CaseFailure::Panicked {
                    payload: crate::case::panic_payload(&payload),
                },
            }),
        }
    }
    let grid = RunGrid::from_specs(specs)
        .oracle(OracleMode::Strict)
        .jobs(jobs);
    let (checkpoint, errors) = grid
        .run_with_checkpoints(None, usize::MAX, |_| {})
        .expect("a fresh run resumes from nothing, so no checkpoint mismatch");

    for error in errors {
        let index = case_of_spec[error.index()];
        let failure = match error {
            RunError::Scenario {
                error: ScenarioError::OracleViolation { violation },
                ..
            } => CaseFailure::OracleViolations {
                kinds: vec![violation_name(&violation).to_string()],
                rendered: vec![violation.to_string()],
            },
            RunError::Scenario { error, .. } => CaseFailure::InvalidScenario {
                reason: error.to_string(),
            },
            RunError::Panicked { payload, .. } => CaseFailure::Panicked { payload },
            RunError::CheckpointMismatch { .. } => {
                unreachable!("per-job errors never include checkpoint mismatches")
            }
        };
        findings.push(Finding {
            case: cases[index].clone(),
            failure,
        });
    }
    for index in checkpoint.completed_indices() {
        let report = checkpoint
            .report(index)
            .expect("completed indices have reports");
        let anomalies = etrain_sched::audit_transitions(&report.health_events);
        if !anomalies.is_empty() {
            findings.push(Finding {
                case: cases[case_of_spec[index]].clone(),
                failure: CaseFailure::HealthAnomalies { anomalies },
            });
        }
    }
    CampaignReport {
        cases_run: cases.len(),
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_campaign_sweeps_clean() {
        let cases = campaign_cases(0, 6, true);
        assert_eq!(cases.len(), 6);
        let report = run_campaign(&cases, 2);
        assert_eq!(report.cases_run, 6);
        assert!(
            report.is_clean(),
            "unexpected findings: {:?}",
            report.findings
        );
    }

    #[test]
    fn quick_mode_caps_horizons() {
        for case in campaign_cases(0, 16, true) {
            assert!(case.plan.horizon_s <= 600);
        }
        // The generator's range reaches past the quick cap, so the cap
        // must actually bind somewhere in a small seed window.
        assert!(campaign_cases(0, 16, false)
            .iter()
            .any(|c| c.plan.horizon_s > 600));
    }

    #[test]
    fn broken_cases_surface_as_findings_not_crashes() {
        use etrain_sim::{FaultPlan, FaultWindow};
        let mut cases = campaign_cases(0, 3, true);
        // Seed 1: a fault plan that fails validation (reversed window).
        let mut faults = FaultPlan::none();
        faults.outages.push(FaultWindow {
            start_s: 10.0,
            end_s: 5.0,
        });
        cases[1].plan.faults = Some(faults);
        // Seed 2: a knob the scenario builder asserts on outright.
        cases[2].plan.lambda = f64::NAN;
        let report = run_campaign(&cases, 1);
        assert_eq!(report.cases_run, 3);
        assert_eq!(report.findings.len(), 2, "findings: {:?}", report.findings);
        let failure_for = |seed: u64| {
            &report
                .findings
                .iter()
                .find(|f| f.case.plan.seed == seed)
                .unwrap_or_else(|| panic!("no finding for seed {seed}"))
                .failure
        };
        assert!(matches!(
            failure_for(1),
            CaseFailure::InvalidScenario { .. }
        ));
        assert!(matches!(failure_for(2), CaseFailure::Panicked { .. }));
    }
}
