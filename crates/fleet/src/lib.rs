//! # etrain-fleet — population-scale simulation
//!
//! The paper's evaluation runs one device at a time; its headline claims
//! are about *populations* ("for a fleet of a million handsets, the
//! reclaimed tail energy is ..."). This crate closes that gap: one
//! invocation simulates 10⁵–10⁶ devices and reports population-level
//! energy aggregates, at a cost of roughly half a millisecond per device.
//!
//! What makes a million devices tractable in one process:
//!
//! - **Lazy trace synthesis** — each device's upload packets and
//!   heartbeats are generated straight into per-shard reusable buffers
//!   (`upload_packets_into` / `synthesize_into`), bit-identical to the
//!   materializing single-device pipeline but without per-device trace
//!   allocation.
//! - **Struct-of-arrays results** — per-device outputs land in
//!   [`FleetColumns`]: seven dense columns, ~37 bytes/device, instead of
//!   a million `RunReport`s.
//! - **Deterministic sharding** — the device range is partitioned
//!   contiguously, shards run on a scoped worker pool, and outputs are
//!   reassembled by shard index; the result is bit-for-bit identical to
//!   a serial run, for any worker count and shard size.
//! - **Pure per-device seeding** — every device's class and seed derive
//!   from `(fleet seed, device index)` alone, so a fleet of N is exactly
//!   N independent single-device runs (the conformance tier asserts
//!   this, report for report).
//!
//! The entry points: [`FleetConfig::paper_default`] describes the run,
//! [`run_fleet`] executes it, [`FleetResult::snapshot`] turns it into the
//! serializable population summary behind `BENCH_fleet.json`.
//!
//! # Example
//!
//! ```
//! use etrain_fleet::{run_fleet, FleetConfig};
//!
//! let result = run_fleet(&FleetConfig::paper_default(30).seed(7));
//! assert_eq!(result.fleet.devices, 30);
//! assert!(result.fleet.extra_energy_j > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columns;
pub mod population;
pub mod runner;

pub use columns::FleetColumns;
pub use population::{class_label, device_seed, ClassMix, DeviceSpec, FleetConfig};
pub use runner::{run_fleet, run_fleet_journaled, run_fleet_reports, FleetResult};

// Re-exported so fleet experiments can be described with this crate alone.
pub use etrain_obs::{ClassSnapshot, FleetSnapshot, FleetTally};

/// The environment variable overriding experiment fleet sizes
/// (`ETRAIN_FLEET_SIZE`), read strictly by [`try_fleet_size_from_env`].
pub const FLEET_SIZE_ENV: &str = "ETRAIN_FLEET_SIZE";

/// Parses an `ETRAIN_FLEET_SIZE` value strictly: `Ok(None)` when unset or
/// empty, `Ok(Some(n))` for a positive integer device count, and `Err`
/// (with a human-readable reason) for anything else — including `0`,
/// which would otherwise silently mean "not set".
///
/// # Errors
///
/// Returns the reason the value is unusable, prefixed with the variable
/// name, mirroring `try_jobs_from_env` in the sim crate.
///
/// # Examples
///
/// ```
/// use etrain_fleet::try_fleet_size_from_env;
///
/// assert_eq!(try_fleet_size_from_env(None), Ok(None));
/// assert_eq!(try_fleet_size_from_env(Some("250000")), Ok(Some(250_000)));
/// assert!(try_fleet_size_from_env(Some("0")).is_err());
/// assert!(try_fleet_size_from_env(Some("a million")).is_err());
/// ```
pub fn try_fleet_size_from_env(value: Option<&str>) -> Result<Option<u64>, String> {
    let raw = match value {
        None => return Ok(None),
        Some(raw) => raw.trim(),
    };
    if raw.is_empty() {
        return Ok(None);
    }
    match raw.parse::<u64>() {
        Ok(0) => Err(format!(
            "{FLEET_SIZE_ENV}={raw:?}: fleet size must be >= 1 device"
        )),
        Ok(devices) => Ok(Some(devices)),
        Err(_) => Err(format!(
            "{FLEET_SIZE_ENV}={raw:?}: expected a positive integer device count"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_size_parser_is_strict() {
        assert_eq!(try_fleet_size_from_env(None), Ok(None));
        assert_eq!(try_fleet_size_from_env(Some("")), Ok(None));
        assert_eq!(try_fleet_size_from_env(Some("  ")), Ok(None));
        assert_eq!(try_fleet_size_from_env(Some(" 42 ")), Ok(Some(42)));
        assert!(try_fleet_size_from_env(Some("0")).is_err());
        assert!(try_fleet_size_from_env(Some("-3")).is_err());
        assert!(try_fleet_size_from_env(Some("1e6")).is_err());
    }
}
