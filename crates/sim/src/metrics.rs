//! The paper's evaluation metrics, computed from an [`EngineOutput`].
//!
//! Paper Sec. VI-A investigates three metrics: (1) total energy
//! consumption, (2) normalized delay (average scheduling delay per data
//! packet), and (3) deadline violation ratio (fraction of packets that
//! violate their app's deadline).

use etrain_sched::{AppProfile, HealthTransition};
use serde::{Deserialize, Serialize};

use crate::engine::EngineOutput;
use crate::oracle::OracleOutcome;

/// Per-cargo-app breakdown of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppReport {
    /// App name from its profile.
    pub name: String,
    /// Packets transmitted.
    pub packets: usize,
    /// Bytes transmitted.
    pub bytes: u64,
    /// Mean scheduling delay in seconds (0 when no packet completed).
    pub mean_delay_s: f64,
    /// Fraction of this app's packets that violated its deadline.
    pub violation_ratio: f64,
}

/// The full report of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunReport {
    /// Display name of the scheduler that produced the run.
    pub scheduler: String,
    /// Simulated horizon in seconds.
    pub horizon_s: f64,
    /// Radio energy above idle: transmission + tail, in joules. This is
    /// the quantity the paper's energy plots track.
    pub extra_energy_j: f64,
    /// Energy spent actively transmitting, in joules.
    pub transmission_energy_j: f64,
    /// Energy spent in DCH/FACH tails, in joules.
    pub tail_energy_j: f64,
    /// Idle-baseline energy over the horizon, in joules.
    pub idle_energy_j: f64,
    /// Total device energy (extra + idle), in joules.
    pub total_energy_j: f64,
    /// Heartbeats transmitted.
    pub heartbeats_sent: usize,
    /// Cargo packets transmitted.
    pub packets_completed: usize,
    /// Cargo packets unfinished at the horizon (in flight or still
    /// deferred).
    pub packets_unfinished: usize,
    /// Cargo packets the retry layer abandoned (attempts exhausted or
    /// deadline-aware give-up).
    pub packets_abandoned: usize,
    /// Fraction of settled-or-unfinished packets that were abandoned:
    /// `abandoned / (completed + abandoned + unfinished)`, 0 for an empty
    /// run.
    pub abandonment_ratio: f64,
    /// Retry attempts scheduled after failed transfers.
    pub retries: usize,
    /// Energy burned by failed transfer attempts, in joules (a subset of
    /// `transmission_energy_j`).
    pub wasted_retry_energy_j: f64,
    /// The paper's normalized delay: mean scheduling delay per completed
    /// packet, in seconds.
    pub normalized_delay_s: f64,
    /// The paper's deadline violation ratio over completed packets.
    pub deadline_violation_ratio: f64,
    /// Cumulative radio busy time in seconds.
    pub busy_time_s: f64,
    /// Slot boundaries the run stepped through, identical across kernels
    /// ([`EngineKind`](crate::EngineKind)); deserialized from the historic
    /// `slots_run` name in older reports, and 0 for reports predating the
    /// counter.
    pub steps_run: u64,
    /// IDLE→DCH state promotions (signaling events; fast dormancy trades
    /// tail energy for more of these).
    pub promotions: usize,
    /// Packets shed by admission control (terminal state: never
    /// transmitted, never completed).
    pub packets_shed: usize,
    /// Packets released early by the force-flush-oldest shed policy (these
    /// packets were transmitted; this is a bookkeeping count).
    pub forced_flushes: usize,
    /// Degradation-ladder transitions recorded during the run, in time
    /// order; empty for non-degrading schedulers.
    pub health_events: Vec<HealthTransition>,
    /// Per-app breakdown.
    pub per_app: Vec<AppReport>,
    /// Outcome of the simulation oracle's audit of this run; `None` when
    /// the run executed with [`OracleMode::Off`](crate::OracleMode::Off).
    pub oracle: Option<OracleOutcome>,
    /// Observability metrics snapshot (energy per RRC state, tail
    /// utilization, decision counts); `None` when the run executed with
    /// [`ObsMode::Off`](etrain_obs::ObsMode::Off). Inside the snapshot,
    /// undefined ratios are *absent*, not zero — see
    /// [`etrain_obs::MetricsSnapshot`].
    pub metrics: Option<etrain_obs::MetricsSnapshot>,
}

// Hand-written (not derived) so `steps_run` stays lenient: older reports
// serialized the counter as `slots_run` or not at all, and both must keep
// parsing (the alias reads through, a missing counter reads as 0). Every
// other field deserializes exactly as the derive would.
impl Deserialize for RunReport {
    fn from_value(value: &serde::Value) -> Result<Self, serde::FromValueError> {
        let entries = value
            .as_object()
            .ok_or_else(|| serde::FromValueError::expected("object", value))?;
        let lookup = |name: &str| entries.iter().find(|(key, _)| key == name).map(|(_, v)| v);
        let steps_run = match lookup("steps_run").or_else(|| lookup("slots_run")) {
            Some(v) => u64::from_value(v)?,
            None => 0,
        };
        Ok(RunReport {
            scheduler: serde::__field(entries, "scheduler")?,
            horizon_s: serde::__field(entries, "horizon_s")?,
            extra_energy_j: serde::__field(entries, "extra_energy_j")?,
            transmission_energy_j: serde::__field(entries, "transmission_energy_j")?,
            tail_energy_j: serde::__field(entries, "tail_energy_j")?,
            idle_energy_j: serde::__field(entries, "idle_energy_j")?,
            total_energy_j: serde::__field(entries, "total_energy_j")?,
            heartbeats_sent: serde::__field(entries, "heartbeats_sent")?,
            packets_completed: serde::__field(entries, "packets_completed")?,
            packets_unfinished: serde::__field(entries, "packets_unfinished")?,
            packets_abandoned: serde::__field(entries, "packets_abandoned")?,
            abandonment_ratio: serde::__field(entries, "abandonment_ratio")?,
            retries: serde::__field(entries, "retries")?,
            wasted_retry_energy_j: serde::__field(entries, "wasted_retry_energy_j")?,
            normalized_delay_s: serde::__field(entries, "normalized_delay_s")?,
            deadline_violation_ratio: serde::__field(entries, "deadline_violation_ratio")?,
            busy_time_s: serde::__field(entries, "busy_time_s")?,
            steps_run,
            promotions: serde::__field(entries, "promotions")?,
            packets_shed: serde::__field(entries, "packets_shed")?,
            forced_flushes: serde::__field(entries, "forced_flushes")?,
            health_events: serde::__field(entries, "health_events")?,
            per_app: serde::__field(entries, "per_app")?,
            oracle: serde::__field(entries, "oracle")?,
            metrics: serde::__field(entries, "metrics")?,
        })
    }
}

impl RunReport {
    /// Builds the report from raw engine output and the app profiles the
    /// scheduler was constructed with.
    pub fn from_engine(
        scheduler: impl Into<String>,
        output: &EngineOutput,
        profiles: &[AppProfile],
    ) -> Self {
        let mut per_app: Vec<AppReport> = profiles
            .iter()
            .map(|p| AppReport {
                name: p.name.clone(),
                packets: 0,
                bytes: 0,
                mean_delay_s: 0.0,
                violation_ratio: 0.0,
            })
            .collect();
        let mut delay_sums = vec![0.0f64; profiles.len()];
        let mut violations = vec![0usize; profiles.len()];

        for c in &output.completed {
            let idx = c.packet.app.index();
            let delay = c.scheduling_delay_s();
            per_app[idx].packets += 1;
            per_app[idx].bytes += c.packet.size_bytes;
            delay_sums[idx] += delay;
            if delay >= profiles[idx].cost.deadline_s() {
                violations[idx] += 1;
            }
        }
        for (idx, report) in per_app.iter_mut().enumerate() {
            if report.packets > 0 {
                report.mean_delay_s = delay_sums[idx] / report.packets as f64;
                report.violation_ratio = violations[idx] as f64 / report.packets as f64;
            }
        }

        let packets_completed = output.completed.len();
        let normalized_delay_s = if packets_completed > 0 {
            delay_sums.iter().sum::<f64>() / packets_completed as f64
        } else {
            0.0
        };
        let deadline_violation_ratio = if packets_completed > 0 {
            violations.iter().sum::<usize>() as f64 / packets_completed as f64
        } else {
            0.0
        };
        let extra = output.transmission_energy_j + output.tail_energy_j;
        let packets_unfinished = output.in_flight.len() + output.still_deferred;
        let packets_abandoned = output.abandoned.len();
        let settled = packets_completed + packets_abandoned + packets_unfinished;
        let abandonment_ratio = if settled > 0 {
            packets_abandoned as f64 / settled as f64
        } else {
            0.0
        };

        RunReport {
            scheduler: scheduler.into(),
            horizon_s: output.horizon_s,
            extra_energy_j: extra,
            transmission_energy_j: output.transmission_energy_j,
            tail_energy_j: output.tail_energy_j,
            idle_energy_j: output.idle_energy_j,
            total_energy_j: extra + output.idle_energy_j,
            heartbeats_sent: output.heartbeats_sent,
            packets_completed,
            packets_unfinished,
            packets_abandoned,
            abandonment_ratio,
            retries: output.retries,
            wasted_retry_energy_j: output.wasted_retry_energy_j,
            normalized_delay_s,
            deadline_violation_ratio,
            busy_time_s: output.busy_time_s,
            steps_run: output.steps_run,
            promotions: output.promotions,
            packets_shed: output.shed.len(),
            forced_flushes: output.forced_flushes,
            health_events: output.health_events.clone(),
            per_app,
            oracle: None,
            metrics: None,
        }
    }

    /// The fraction of extra energy spent in tails (the waste eTrain
    /// targets), in `[0, 1]`. Degenerate runs (empty workload, zero extra
    /// energy) report `0.0`, never NaN.
    pub fn tail_fraction(&self) -> f64 {
        if self.extra_energy_j.is_finite() && self.extra_energy_j > 0.0 {
            (self.tail_energy_j / self.extra_energy_j).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CompletedPacket;
    use etrain_trace::packets::Packet;
    use etrain_trace::CargoAppId;

    fn completed(app: usize, arrival: f64, release: f64) -> CompletedPacket {
        CompletedPacket {
            packet: Packet {
                id: 0,
                app: CargoAppId(app),
                arrival_s: arrival,
                size_bytes: 1_000,
            },
            release_s: release,
            tx_start_s: release,
            tx_end_s: release + 0.1,
        }
    }

    fn output(completed_packets: Vec<CompletedPacket>) -> EngineOutput {
        EngineOutput {
            completed: completed_packets,
            in_flight: Vec::new(),
            abandoned: Vec::new(),
            retries: 0,
            wasted_retry_energy_j: 0.0,
            still_deferred: 0,
            shed: Vec::new(),
            forced_flushes: 0,
            health_events: Vec::new(),
            heartbeats_sent: 5,
            transmission_energy_j: 2.0,
            tail_energy_j: 8.0,
            idle_energy_j: 10.0,
            busy_time_s: 3.0,
            promotions: 4,
            horizon_s: 100.0,
            transmissions: Vec::new(),
            radio_params: etrain_radio::RadioParams::galaxy_s4_3g(),
            events_processed: 0,
            steps_run: 0,
        }
    }

    #[test]
    fn metrics_aggregate_correctly() {
        // Weibo deadline is 30 s; one packet waits 40 s (violation), the
        // other 10 s.
        let out = output(vec![completed(1, 0.0, 40.0), completed(1, 0.0, 10.0)]);
        let report = RunReport::from_engine("Test", &out, &AppProfile::paper_trio(30.0));
        assert_eq!(report.packets_completed, 2);
        assert!((report.normalized_delay_s - 25.0).abs() < 1e-12);
        assert!((report.deadline_violation_ratio - 0.5).abs() < 1e-12);
        assert!((report.extra_energy_j - 10.0).abs() < 1e-12);
        assert!((report.total_energy_j - 20.0).abs() < 1e-12);
        assert!((report.tail_fraction() - 0.8).abs() < 1e-12);
        assert_eq!(report.per_app[1].packets, 2);
        assert_eq!(report.per_app[0].packets, 0);
    }

    #[test]
    fn empty_run_yields_zero_metrics() {
        let report = RunReport::from_engine("Test", &output(vec![]), &AppProfile::paper_trio(30.0));
        assert_eq!(report.packets_completed, 0);
        assert_eq!(report.normalized_delay_s, 0.0);
        assert_eq!(report.deadline_violation_ratio, 0.0);
    }

    #[test]
    fn ratio_metrics_never_nan_on_zero_energy() {
        // A run with no radio activity at all: every ratio must degrade to
        // exactly 0.0, not NaN.
        let mut out = output(vec![]);
        out.transmission_energy_j = 0.0;
        out.tail_energy_j = 0.0;
        out.busy_time_s = 0.0;
        out.heartbeats_sent = 0;
        out.promotions = 0;
        let report = RunReport::from_engine("Test", &out, &AppProfile::paper_trio(30.0));
        assert_eq!(report.extra_energy_j, 0.0);
        assert_eq!(report.tail_fraction(), 0.0);
        assert_eq!(report.abandonment_ratio, 0.0);
        assert_eq!(report.normalized_delay_s, 0.0);
        assert_eq!(report.deadline_violation_ratio, 0.0);
        assert!(report.tail_fraction().is_finite());
        assert!(report.oracle.is_none());
    }

    #[test]
    fn abandonment_ratio_counts_all_terminal_states() {
        let mut out = output(vec![completed(0, 0.0, 5.0)]);
        out.abandoned.push(crate::engine::AbandonedPacket {
            packet: Packet {
                id: 9,
                app: CargoAppId(1),
                arrival_s: 0.0,
                size_bytes: 1_000,
            },
            abandoned_at_s: 50.0,
            attempts: 6,
        });
        out.retries = 7;
        out.wasted_retry_energy_j = 1.5;
        out.still_deferred = 2;
        let report = RunReport::from_engine("Test", &out, &AppProfile::paper_trio(30.0));
        assert_eq!(report.packets_abandoned, 1);
        assert_eq!(report.retries, 7);
        assert_eq!(report.wasted_retry_energy_j, 1.5);
        // 1 abandoned of (1 completed + 1 abandoned + 2 unfinished).
        assert!((report.abandonment_ratio - 0.25).abs() < 1e-12);
    }

    #[test]
    fn report_round_trips_and_legacy_slot_counter_parses() {
        let mut out = output(vec![completed(1, 0.0, 10.0)]);
        out.steps_run = 42;
        let report = RunReport::from_engine("Test", &out, &AppProfile::paper_trio(30.0));
        assert_eq!(report.steps_run, 42);

        // Fresh reports round-trip through JSON unchanged.
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);

        // Older reports wrote the counter as `slots_run`.
        let legacy = json.replace("\"steps_run\"", "\"slots_run\"");
        let back: RunReport = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.steps_run, 42);

        // Reports predating the counter omitted it entirely.
        let ancient = json.replace("\"steps_run\":42,", "");
        assert_ne!(ancient, json, "field must exist to be stripped");
        let back: RunReport = serde_json::from_str(&ancient).unwrap();
        assert_eq!(back.steps_run, 0);
    }

    #[test]
    fn per_app_violation_ratios_are_independent() {
        // Mail deadline 30 (f1): 35 s delay violates; Cloud 10 s does not.
        let out = output(vec![completed(0, 0.0, 35.0), completed(2, 0.0, 10.0)]);
        let report = RunReport::from_engine("Test", &out, &AppProfile::paper_trio(30.0));
        assert_eq!(report.per_app[0].violation_ratio, 1.0);
        assert_eq!(report.per_app[2].violation_ratio, 0.0);
        assert_eq!(report.deadline_violation_ratio, 0.5);
    }
}
