//! # etrain-sim — the trace-driven device simulator
//!
//! The eTrain paper evaluates on two substrates: trace-driven simulation
//! (Sec. VI-A to VI-C) and controlled experiments on instrumented phones
//! with a Monsoon power monitor (Sec. VI-D). This crate is the reproduction
//! of both: a discrete-event simulation of one smartphone's cellular
//! interface that
//!
//! - replays packet arrivals (synthetic Poisson traces or replayed user
//!   traces) into a pluggable [`Scheduler`](etrain_sched::Scheduler);
//! - transmits heartbeats of the configured train apps at their exact
//!   departure times, never rescheduling them (all compared algorithms
//!   leave heartbeats untouched — paper Sec. VI-A);
//! - serializes released transmissions through a FIFO `Q_TX` over a
//!   time-varying bandwidth trace;
//! - drives the [`Radio`](etrain_radio::Radio) RRC state machine and
//!   integrates transmission, tail and idle energy exactly;
//! - reports the paper's three metrics: **total energy consumption**,
//!   **normalized delay** (average per-packet scheduling delay) and
//!   **deadline violation ratio**.
//!
//! [`Scenario`] is the entry point; [`sweep`] adds the parameter sweeps
//! behind the paper's figures (Θ sweeps, E-D panels, delay-matched
//! comparisons).
//!
//! # Example
//!
//! ```
//! use etrain_sim::{Scenario, SchedulerKind};
//!
//! let etrain = Scenario::paper_default()
//!     .duration_secs(1800)
//!     .scheduler(SchedulerKind::ETrain { theta: 0.2, k: None })
//!     .seed(7)
//!     .run();
//! let baseline = Scenario::paper_default()
//!     .duration_secs(1800)
//!     .scheduler(SchedulerKind::Baseline)
//!     .seed(7)
//!     .run();
//! assert!(etrain.extra_energy_j < baseline.extra_energy_j);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compare;
mod engine;
pub mod fuzz;
mod metrics;
pub mod oracle;
mod replicate;
mod report;
pub mod runner;
mod scenario;
pub mod sweep;

pub use compare::Comparison;
pub use engine::{
    run_engine, run_engine_checked, run_engine_configured, run_engine_journaled,
    run_engine_with_faults, run_engine_with_faults_checked, AbandonedPacket, CompletedPacket,
    Engine, EngineKind, EngineOpts, EngineOutput, EngineSnapshot, SnapshotError, ENGINE_ENV,
    SNAPSHOT_VERSION,
};
pub use fuzz::{conformance_kinds, CasePlan, TrainSet};
pub use metrics::{AppReport, RunReport};
pub use oracle::{
    audit_scheduler_ordering, OracleCounters, OracleMode, OracleOutcome, OracleViolation,
    OrderingAudit, ORACLE_ENV,
};
pub use replicate::{replicate, Percentiles, ReplicatedReport, Stat};
pub use report::{fmt_f, Table};
pub use runner::{
    try_jobs_from_env, GridCheckpoint, RunError, RunGrid, RunSpec, TraceCache, JOBS_ENV,
};
pub use scenario::{BandwidthSource, Scenario, ScenarioError, SchedulerKind, TraceBundle};

// Re-exported so fault-injection experiments can be described with this
// crate alone.
pub use etrain_sched::{RetryDecision, RetryPolicy};
pub use etrain_trace::faults::{FaultPlan, FaultWindow};

// Re-exported so overload/degradation experiments can be described with
// this crate alone.
pub use etrain_sched::{
    AdmissionConfig, HealthConfig, HealthState, HealthTransition, ShedPolicy, TransitionCause,
};

// Re-exported so observability consumers (journaled runs, metrics
// snapshots, event recorders) can be described with this crate alone.
pub use etrain_obs::{
    Event, EventRecord, Journal, JsonLinesRecorder, MetricsRegistry, MetricsSnapshot, NullRecorder,
    ObsMode, Recorder, RingRecorder, OBS_ENV,
};
