//! Fig. 10(b): controlled experiment — impact of the cost bound Θ.
//!
//! Paper setup: 3 cargo + 3 train apps on the device for 2 hours, Θ swept
//! from 0.1 to 0.5. Paper result: energy drops from >1200 J to ≈ 850 J
//! (≈ 30 % reduction) while the average delay grows from 48 s to 62 s
//! (≈ 30 % increase) — the user picks their point on the tradeoff.

use crate::ExperimentResult;
use etrain_sim::sweep::{lin_space, theta_sweep};
use etrain_sim::Table;

use super::{j, paper_base, pct, s};

/// Runs the Fig. 10(b) reproduction.
pub fn run(quick: bool) -> ExperimentResult {
    let base = paper_base(quick);
    let thetas = if quick {
        lin_space(0.1, 0.5, 3)
    } else {
        lin_space(0.1, 0.5, 5)
    };
    let sweep = theta_sweep(&base, &thetas, None);
    let first_energy = sweep[0].1.extra_energy_j;
    let first_delay = sweep[0].1.normalized_delay_s;

    let mut table = Table::new(
        "Fig. 10(b) — Θ sweep, controlled experiment (k = ∞)",
        &[
            "theta",
            "energy_j",
            "delay_s",
            "energy_change",
            "delay_change",
        ],
    );
    for (theta, report) in &sweep {
        table.push_row_strings(vec![
            format!("{theta:.1}"),
            j(report.extra_energy_j),
            s(report.normalized_delay_s),
            pct(report.extra_energy_j / first_energy - 1.0),
            pct(report.normalized_delay_s / first_delay.max(f64::MIN_POSITIVE) - 1.0),
        ]);
    }
    ExperimentResult::from_tables(vec![table]).headline_cell(
        "energy_change_at_max_theta",
        0,
        -1,
        "energy_change",
        "%",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_reduces_energy_and_raises_delay() {
        let tables = run(true).tables;
        let rows: Vec<Vec<String>> = tables[0]
            .to_csv()
            .lines()
            .skip(1)
            .map(|r| r.split(',').map(str::to_owned).collect())
            .collect();
        let e0: f64 = rows[0][1].parse().unwrap();
        let e_last: f64 = rows.last().unwrap()[1].parse().unwrap();
        let d0: f64 = rows[0][2].parse().unwrap();
        let d_last: f64 = rows.last().unwrap()[2].parse().unwrap();
        assert!(e_last < e0);
        assert!(d_last > d0);
    }
}
