//! Fig. 8(b): total energy at a matched normalized delay of ≈ 55 s under
//! arrival rates λ ∈ {0.04, 0.06, 0.08, 0.10, 0.12} pkt/s.
//!
//! Paper methodology: for each λ, tune each algorithm's knob (Θ for
//! eTrain, Ω for PerES, V for eTime) so the normalized delay lands at
//! 55 s, then compare energy and deadline violation ratio. Paper results:
//! the baseline's energy flattens near λ = 0.10 (tails start overlapping);
//! eTrain saves 628–1650 J vs the baseline; eTime outperforms PerES.

use crate::ExperimentResult;
use etrain_sim::sweep::{log_space, match_delay};
use etrain_sim::{SchedulerKind, Table};

use super::{j, paper_base, pct, s};

const TARGET_DELAY_S: f64 = 55.0;

/// Runs the Fig. 8(b) reproduction.
pub fn run(quick: bool) -> ExperimentResult {
    let base = paper_base(quick);
    let lambdas: &[f64] = if quick {
        &[0.04, 0.08, 0.12]
    } else {
        &[0.04, 0.06, 0.08, 0.10, 0.12]
    };
    let n = if quick { 4 } else { 8 };

    let mut table = Table::new(
        format!("Fig. 8(b) — energy at matched delay ≈ {TARGET_DELAY_S} s"),
        &[
            "lambda",
            "algorithm",
            "energy_j",
            "delay_s",
            "violation",
            "saving_vs_baseline_j",
        ],
    );
    for &lambda in lambdas {
        let scenario = base.clone().lambda(lambda);
        let baseline = scenario.clone().scheduler(SchedulerKind::Baseline).run();
        table.push_row_strings(vec![
            format!("{lambda:.2}"),
            "Baseline".to_owned(),
            j(baseline.extra_energy_j),
            s(baseline.normalized_delay_s),
            pct(baseline.deadline_violation_ratio),
            "-".to_owned(),
        ]);

        let matched: Vec<(&str, Option<(f64, etrain_sim::RunReport)>)> = vec![
            (
                "eTrain",
                match_delay(
                    &scenario,
                    &log_space(0.5, 20.0, n),
                    |theta| SchedulerKind::ETrain { theta, k: None },
                    TARGET_DELAY_S,
                ),
            ),
            (
                "PerES",
                match_delay(
                    &scenario,
                    &log_space(0.02, 2.0, n),
                    |omega| SchedulerKind::PerEs { omega },
                    TARGET_DELAY_S,
                ),
            ),
            (
                "eTime",
                match_delay(
                    &scenario,
                    &log_space(5_000.0, 120_000.0, n),
                    |v_bytes| SchedulerKind::ETime { v_bytes },
                    TARGET_DELAY_S,
                ),
            ),
        ];
        for (name, result) in matched {
            let (_, report) = result.expect("non-empty knob scan");
            table.push_row_strings(vec![
                format!("{lambda:.2}"),
                name.to_owned(),
                j(report.extra_energy_j),
                s(report.normalized_delay_s),
                pct(report.deadline_violation_ratio),
                j(baseline.extra_energy_j - report.extra_energy_j),
            ]);
        }
    }
    ExperimentResult::from_tables(vec![table]).headline_cell(
        "etrain_saving_at_max_lambda_j",
        0,
        -3,
        "saving_vs_baseline_j",
        "J",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn etrain_saves_most_at_every_lambda() {
        let tables = run(true).tables;
        let csv = tables[0].to_csv();
        let mut by_lambda: std::collections::BTreeMap<String, Vec<(String, f64)>> =
            Default::default();
        for row in csv.lines().skip(1) {
            let cells: Vec<&str> = row.split(',').collect();
            by_lambda
                .entry(cells[0].to_owned())
                .or_default()
                .push((cells[1].to_owned(), cells[2].parse().unwrap()));
        }
        for (lambda, entries) in by_lambda {
            let energy = |name: &str| -> f64 { entries.iter().find(|(n, _)| n == name).unwrap().1 };
            assert!(
                energy("eTrain") < energy("Baseline"),
                "λ={lambda}: eTrain must beat baseline"
            );
            assert!(
                energy("eTrain") < energy("PerES"),
                "λ={lambda}: eTrain must beat PerES"
            );
        }
    }
}
