//! One chaos case: a serializable scenario plan, the scheduler it runs
//! under, and an optional post-run corruption for oracle self-testing.
//!
//! A [`ChaosCase`] is the unit the campaign sweeps, the shrinker
//! minimizes, and a repro artifact replays. Running one yields either
//! `None` (clean) or a [`CaseFailure`] — an oracle violation, a panic, a
//! scenario that refuses to validate, or a health-ladder anomaly.

use etrain_sim::oracle::{self, OracleViolation};
use etrain_sim::{CasePlan, EngineKind, EngineOutput, FaultPlan, SchedulerKind};
use serde::{Deserialize, Serialize};

/// A deliberate post-run corruption of the engine output, used to prove
/// the oracle actually catches broken runs (the campaign's self-test
/// tier). Each variant mirrors a plausible engine bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Corruption {
    /// Inflate the tail-energy ledger by a joule.
    TamperTailEnergy,
    /// Halve the duration of the last logged transmission (a truncated
    /// DCH tail).
    TruncateTransmission,
    /// Drop the last completion record (a lost packet).
    DropCompletion,
    /// Record the first completion twice (a double terminal state).
    DuplicateCompletion,
    /// Log the first busy interval twice (overlapping radio activity).
    DuplicateTransmission,
    /// Claim retries happened in a run whose fault plan is a no-op.
    PhantomRetry,
    /// Report one more heartbeat than the run transmitted.
    InflateHeartbeatCount,
    /// Swap the first two transmissions out of time order (an event
    /// kernel that retired slot events in the wrong sequence).
    SwapTransmissions,
}

impl Corruption {
    /// Every corruption, for the self-test sweep.
    pub fn all() -> [Corruption; 8] {
        [
            Corruption::TamperTailEnergy,
            Corruption::TruncateTransmission,
            Corruption::DropCompletion,
            Corruption::DuplicateCompletion,
            Corruption::DuplicateTransmission,
            Corruption::PhantomRetry,
            Corruption::InflateHeartbeatCount,
            Corruption::SwapTransmissions,
        ]
    }

    /// Applies the corruption in place. Returns `false` when the output
    /// has nothing to corrupt (no completions to drop, say) — the case
    /// then counts as clean, which is what lets the shrinker find the
    /// smallest run that still *has* the corrupted artifact.
    pub fn apply(&self, output: &mut EngineOutput) -> bool {
        match self {
            Corruption::TamperTailEnergy => {
                output.tail_energy_j += 1.0;
                true
            }
            Corruption::TruncateTransmission => match output.transmissions.last_mut() {
                Some(last) => {
                    last.duration_s *= 0.5;
                    true
                }
                None => false,
            },
            Corruption::DropCompletion => output.completed.pop().is_some(),
            Corruption::DuplicateCompletion => match output.completed.first() {
                Some(first) => {
                    let dup = *first;
                    output.completed.push(dup);
                    true
                }
                None => false,
            },
            Corruption::DuplicateTransmission => match output.transmissions.first() {
                Some(first) => {
                    let dup = *first;
                    output.transmissions.push(dup);
                    true
                }
                None => false,
            },
            Corruption::PhantomRetry => {
                output.retries += 3;
                true
            }
            Corruption::InflateHeartbeatCount => {
                output.heartbeats_sent += 1;
                true
            }
            Corruption::SwapTransmissions => {
                if output.transmissions.len() < 2 {
                    return false;
                }
                output.transmissions.swap(0, 1);
                true
            }
        }
    }
}

/// The stable variant name of an oracle violation, used as the failure
/// signature the shrinker preserves ([`OracleViolation`] carries payload
/// data, so its `Display` output is too specific to survive shrinking).
pub fn violation_name(violation: &OracleViolation) -> &'static str {
    match violation {
        OracleViolation::EnergyImbalance { .. } => "EnergyImbalance",
        OracleViolation::TransmitEnergyMismatch { .. } => "TransmitEnergyMismatch",
        OracleViolation::NonFiniteQuantity { .. } => "NonFiniteQuantity",
        OracleViolation::IllegalTimeline { .. } => "IllegalTimeline",
        OracleViolation::OverlappingTransmissions { .. } => "OverlappingTransmissions",
        OracleViolation::PacketConservation { .. } => "PacketConservation",
        OracleViolation::DuplicateTerminalState { .. } => "DuplicateTerminalState",
        OracleViolation::UnknownPacket { .. } => "UnknownPacket",
        OracleViolation::CausalityViolation { .. } => "CausalityViolation",
        OracleViolation::UnexpectedFaultArtifact { .. } => "UnexpectedFaultArtifact",
        OracleViolation::HeartbeatCount { .. } => "HeartbeatCount",
        OracleViolation::TransmissionCount { .. } => "TransmissionCount",
        OracleViolation::MetricsMismatch { .. } => "MetricsMismatch",
        OracleViolation::SchedulerOrdering { .. } => "SchedulerOrdering",
    }
}

/// Why a chaos case failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CaseFailure {
    /// The oracle flagged the run.
    OracleViolations {
        /// Variant names of every violation, in audit order.
        kinds: Vec<String>,
        /// The violations rendered for humans.
        rendered: Vec<String>,
    },
    /// The run panicked.
    Panicked {
        /// The panic payload, stringified.
        payload: String,
    },
    /// The scenario failed validation (a generator or shrinker bug).
    InvalidScenario {
        /// The validation error, rendered.
        reason: String,
    },
    /// The degradation ladder's transition log violated its structural
    /// invariants (see `etrain_sched::audit_transitions`).
    HealthAnomalies {
        /// One description per anomaly.
        anomalies: Vec<String>,
    },
}

impl CaseFailure {
    /// A compact signature of the failure class: what the shrinker must
    /// preserve and what a repro artifact pins.
    pub fn signature(&self) -> String {
        match self {
            CaseFailure::OracleViolations { kinds, .. } => {
                format!("oracle:{}", kinds.first().map_or("?", String::as_str))
            }
            CaseFailure::Panicked { .. } => "panic".to_string(),
            CaseFailure::InvalidScenario { .. } => "invalid-scenario".to_string(),
            CaseFailure::HealthAnomalies { .. } => "health".to_string(),
        }
    }

    /// Whether `candidate` reproduces the same failure class as `self` —
    /// for oracle failures, any overlapping violation variant counts
    /// (shrinking can legitimately shift which related invariant trips
    /// first, e.g. a ledger imbalance surfacing as a busy-time mismatch).
    pub fn matches(&self, candidate: &CaseFailure) -> bool {
        match (self, candidate) {
            (
                CaseFailure::OracleViolations { kinds: a, .. },
                CaseFailure::OracleViolations { kinds: b, .. },
            ) => a.iter().any(|k| b.contains(k)),
            (CaseFailure::Panicked { .. }, CaseFailure::Panicked { .. })
            | (CaseFailure::InvalidScenario { .. }, CaseFailure::InvalidScenario { .. })
            | (CaseFailure::HealthAnomalies { .. }, CaseFailure::HealthAnomalies { .. }) => true,
            _ => false,
        }
    }
}

impl std::fmt::Display for CaseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaseFailure::OracleViolations { rendered, .. } => {
                write!(f, "oracle violations: {}", rendered.join("; "))
            }
            CaseFailure::Panicked { payload } => write!(f, "panicked: {payload}"),
            CaseFailure::InvalidScenario { reason } => write!(f, "invalid scenario: {reason}"),
            CaseFailure::HealthAnomalies { anomalies } => {
                write!(f, "health-ladder anomalies: {}", anomalies.join("; "))
            }
        }
    }
}

/// One chaos case: a plan, a scheduler, an engine kernel, and an
/// optional corruption.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosCase {
    /// The serializable scenario description.
    pub plan: CasePlan,
    /// The scheduler under test.
    pub kind: SchedulerKind,
    /// The engine kernel the case runs under (repro artifacts that
    /// predate the event kernel parse as [`EngineKind::Slot`]).
    pub engine: EngineKind,
    /// A post-run corruption, for oracle self-tests; `None` for the
    /// campaign's real sweep.
    pub corruption: Option<Corruption>,
}

impl ChaosCase {
    /// The campaign's case for `seed`: the conformance generator's plan
    /// (faults on odd seeds), the scheduler rotated through the
    /// conformance kinds, the kernel alternating by seed parity, no
    /// corruption.
    pub fn from_seed(seed: u64) -> ChaosCase {
        let kinds = etrain_sim::conformance_kinds();
        ChaosCase {
            plan: CasePlan::from_seed(seed, seed % 2 == 1),
            kind: kinds[(seed % kinds.len() as u64) as usize],
            engine: if seed % 2 == 0 {
                EngineKind::Slot
            } else {
                EngineKind::Event
            },
            corruption: None,
        }
    }

    /// A short label for grids and findings.
    pub fn label(&self) -> String {
        format!("seed={} {}", self.plan.seed, self.kind)
    }

    /// The case's discrete event count (the shrinker's size metric).
    pub fn event_count(&self) -> usize {
        self.plan.event_count()
    }

    /// Runs the case end to end — engine, optional corruption, oracle
    /// audit, health-ladder audit — isolating panics. `None` means clean.
    pub fn run(&self) -> Option<CaseFailure> {
        // Scenario construction itself asserts on degenerate knobs (a NaN
        // arrival rate, say), so even building the run must be isolated.
        let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.plan
                .scenario()
                .scheduler(self.kind)
                .engine(self.engine)
        }));
        let scenario = match built {
            Ok(scenario) => scenario,
            Err(payload) => {
                return Some(CaseFailure::Panicked {
                    payload: panic_payload(&payload),
                })
            }
        };
        if let Err(error) = scenario.validate() {
            return Some(CaseFailure::InvalidScenario {
                reason: error.to_string(),
            });
        }
        let traces = scenario.generate_traces();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scenario.try_run_with_output_on(&traces)
        }));
        let (report, mut output) = match outcome {
            Ok(Ok(pair)) => pair,
            Ok(Err(error)) => {
                return Some(CaseFailure::InvalidScenario {
                    reason: error.to_string(),
                })
            }
            Err(payload) => {
                return Some(CaseFailure::Panicked {
                    payload: panic_payload(&payload),
                })
            }
        };
        if let Some(corruption) = self.corruption {
            if !corruption.apply(&mut output) {
                return None;
            }
        }
        let faults = self.plan.faults.clone().unwrap_or_else(FaultPlan::none);
        let audit = oracle::audit_engine(&output, &traces.packets, &traces.heartbeats, &faults);
        if !audit.violations.is_empty() {
            return Some(CaseFailure::OracleViolations {
                kinds: audit
                    .violations
                    .iter()
                    .map(|v| violation_name(v).to_string())
                    .collect(),
                rendered: audit.violations.iter().map(|v| v.to_string()).collect(),
            });
        }
        let anomalies = etrain_sched::audit_transitions(&report.health_events);
        if !anomalies.is_empty() {
            return Some(CaseFailure::HealthAnomalies { anomalies });
        }
        None
    }
}

/// Stringifies a caught panic payload.
pub(crate) fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_cases_run_clean() {
        for seed in 0..4 {
            let case = ChaosCase::from_seed(seed);
            assert_eq!(case.run(), None, "seed {seed} should be clean");
        }
    }

    #[test]
    fn every_corruption_is_caught_on_a_busy_run() {
        let mut base = ChaosCase::from_seed(6);
        base.plan.faults = None;
        base.kind = SchedulerKind::Baseline;
        assert_eq!(base.run(), None, "uncorrupted reference must be clean");
        for corruption in Corruption::all() {
            let case = ChaosCase {
                corruption: Some(corruption),
                ..base.clone()
            };
            let failure = case
                .run()
                .unwrap_or_else(|| panic!("{corruption:?} escaped the oracle"));
            assert!(
                matches!(failure, CaseFailure::OracleViolations { .. }),
                "{corruption:?} produced {failure:?}"
            );
        }
    }

    #[test]
    fn campaign_cases_alternate_kernels_by_seed_parity() {
        assert_eq!(ChaosCase::from_seed(0).engine, EngineKind::Slot);
        assert_eq!(ChaosCase::from_seed(1).engine, EngineKind::Event);
        assert_eq!(ChaosCase::from_seed(2).engine, EngineKind::Slot);
    }

    #[test]
    fn event_ordering_corruption_is_caught_under_the_event_kernel() {
        let mut base = ChaosCase::from_seed(6);
        base.plan.faults = None;
        base.kind = SchedulerKind::Baseline;
        base.engine = EngineKind::Event;
        assert_eq!(base.run(), None, "uncorrupted reference must be clean");
        let case = ChaosCase {
            corruption: Some(Corruption::SwapTransmissions),
            ..base
        };
        let failure = case
            .run()
            .expect("swapped transmissions escaped the oracle");
        match failure {
            CaseFailure::OracleViolations { kinds, .. } => {
                assert!(
                    kinds.iter().any(|k| k == "OverlappingTransmissions"),
                    "unexpected violations: {kinds:?}"
                );
            }
            other => panic!("expected oracle violations, got {other:?}"),
        }
    }

    #[test]
    fn cases_round_trip_through_json() {
        let mut case = ChaosCase::from_seed(11);
        case.corruption = Some(Corruption::DropCompletion);
        let json = serde_json::to_string(&case).unwrap();
        let back: ChaosCase = serde_json::from_str(&json).unwrap();
        assert_eq!(case, back);
    }

    #[test]
    fn legacy_case_json_defaults_to_the_slot_kernel() {
        let case = ChaosCase::from_seed(4);
        let json = serde_json::to_string(&case).unwrap();
        let legacy = json.replace("\"engine\":\"slot\",", "");
        assert_ne!(json, legacy, "the engine field should have been present");
        let back: ChaosCase = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back, case);
    }

    #[test]
    fn signatures_and_matching_behave() {
        let oracle_a = CaseFailure::OracleViolations {
            kinds: vec!["EnergyImbalance".into(), "MetricsMismatch".into()],
            rendered: vec![],
        };
        let oracle_b = CaseFailure::OracleViolations {
            kinds: vec!["MetricsMismatch".into()],
            rendered: vec![],
        };
        let panic = CaseFailure::Panicked {
            payload: "boom".into(),
        };
        assert_eq!(oracle_a.signature(), "oracle:EnergyImbalance");
        assert!(oracle_a.matches(&oracle_b));
        assert!(!oracle_b.matches(&panic));
        assert!(panic.matches(&CaseFailure::Panicked {
            payload: "other".into()
        }));
    }
}
