//! Deterministic protocol scripts for crash harnesses.
//!
//! A [`ScriptStep`] carries the same mutation twice: as the protocol
//! `line` a harness sends the real daemon, and as the [`SvcCommand`] an
//! in-process reference [`ServiceState`](crate::ServiceState) applies.
//! Both sides are pure functions of the seed, which is what lets the
//! chaos supervisor compare a SIGKILLed-and-recovered daemon against a
//! never-killed reference fingerprint-for-fingerprint.
//!
//! The generator is intentionally self-contained (a splitmix64 walk, no
//! RNG dependency) so the exact same scripts are reproducible from any
//! crate that depends on `etrain-svc`.

use etrain_core::{CoreCommand, RequestId, TransmitRequest, TxResult};
use etrain_sched::{AppProfile, CostProfile};
use etrain_trace::{CargoAppId, TrainAppId};

use crate::state::SvcCommand;

/// One scripted mutation, in both wire and in-process form.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptStep {
    /// The line-protocol request (no trailing newline).
    pub line: String,
    /// The identical mutation as a command for a reference state.
    pub command: SvcCommand,
}

/// A tiny deterministic generator (splitmix64) so scripts need no RNG
/// crate and are stable across the workspace.
struct Splitmix(u64);

impl Splitmix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// Uniform in `[lo, hi)` with millisecond granularity — coarse
    /// enough that the decimal rendering in a protocol line round-trips
    /// exactly through `f64` parsing.
    fn seconds(&mut self, lo: f64, hi: f64) -> f64 {
        let steps = ((hi - lo) * 1000.0) as u64;
        lo + self.below(steps.max(1)) as f64 / 1000.0
    }
}

/// The fixed prologue every script starts with: one train app and the
/// Mail/Weibo cargo pair.
fn prologue() -> Vec<ScriptStep> {
    vec![
        ScriptStep {
            line: "REGTRAIN WeChat".into(),
            command: SvcCommand::Core(CoreCommand::RegisterTrain {
                name: "WeChat".into(),
            }),
        },
        ScriptStep {
            line: "REGCARGO Mail mail 300".into(),
            command: SvcCommand::Core(CoreCommand::RegisterCargo {
                profile: AppProfile::new("Mail", CostProfile::mail(300.0)),
            }),
        },
        ScriptStep {
            line: "REGCARGO Weibo weibo 120".into(),
            command: SvcCommand::Core(CoreCommand::RegisterCargo {
                profile: AppProfile::new("Weibo", CostProfile::weibo(120.0)),
            }),
        },
    ]
}

/// Generates the deterministic script for `seed`: the prologue plus
/// `steps` seeded mutations — idempotent submits, heartbeats, ticks, and
/// transmission reports (some of which deterministically error on both
/// sides; crash harnesses rely on errors replaying identically too).
pub fn script(seed: u64, steps: usize) -> Vec<ScriptStep> {
    let mut rng = Splitmix(seed.wrapping_mul(2).wrapping_add(1));
    let mut now_s = 0.0f64;
    let mut out = prologue();
    for i in 0..steps {
        now_s += rng.seconds(1.0, 30.0);
        let step = match rng.below(10) {
            0..=4 => {
                let app = rng.below(2) as usize;
                let size = 500 + rng.below(19_500);
                ScriptStep {
                    line: format!("SUBMIT c-{seed}-{i} {app} up {size} {now_s}"),
                    command: SvcCommand::SubmitIdem {
                        client_id: format!("c-{seed}-{i}"),
                        app: CargoAppId(app),
                        request: TransmitRequest::upload(size),
                        now_s,
                    },
                }
            }
            5 | 6 => ScriptStep {
                line: format!("HB 0 {now_s}"),
                command: SvcCommand::Core(CoreCommand::Heartbeat {
                    train: TrainAppId(0),
                    now_s,
                }),
            },
            7 | 8 => ScriptStep {
                line: format!("TICK {now_s}"),
                command: SvcCommand::Core(CoreCommand::Tick { now_s }),
            },
            _ => {
                // A report against a low request id: sometimes in
                // flight, sometimes a deterministic UnknownRequest
                // rejection — identical on daemon and reference.
                let id = rng.below(4);
                let delivered = rng.below(10) < 7;
                ScriptStep {
                    line: format!(
                        "REPORT {id} {} {now_s}",
                        if delivered { "ok" } else { "fail" }
                    ),
                    command: SvcCommand::Core(CoreCommand::ReportResult {
                        request: RequestId(id),
                        result: if delivered {
                            TxResult::Delivered
                        } else {
                            TxResult::Failed
                        },
                        now_s,
                    }),
                }
            }
        };
        out.push(step);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{ServiceState, SvcHealthConfig};
    use etrain_core::CoreConfig;

    #[test]
    fn scripts_are_deterministic_and_seed_sensitive() {
        assert_eq!(script(7, 30), script(7, 30));
        assert_ne!(script(7, 30), script(8, 30));
    }

    #[test]
    fn script_timestamps_are_monotone_and_round_trip_via_display() {
        let steps = script(3, 50);
        let mut last = f64::NEG_INFINITY;
        for step in &steps {
            let t = match &step.command {
                SvcCommand::Core(c) => c.time_s(),
                SvcCommand::SubmitIdem { now_s, .. } => Some(*now_s),
            };
            if let Some(t) = t {
                assert!(t >= last, "time went backwards in script");
                last = t;
                let rendered = format!("{t}");
                let parsed: f64 = rendered.parse().unwrap();
                assert_eq!(parsed.to_bits(), t.to_bits(), "{rendered}");
            }
        }
    }

    #[test]
    fn scripts_apply_cleanly_enough_to_exercise_state() {
        let mut state = ServiceState::new(CoreConfig::default(), SvcHealthConfig::default());
        let mut ok = 0usize;
        for step in script(1, 60) {
            if state.apply(&step.command).is_ok() {
                ok += 1;
            }
        }
        assert!(ok > 30, "only {ok} commands applied cleanly");
        assert!(state.applied() > 30);
    }
}
