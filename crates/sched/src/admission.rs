//! Bounded admission control and load shedding.
//!
//! The paper's evaluation never overloads eTrain: arrivals are gentle
//! enough that the waiting queues `Q_i` stay small. A deployed scheduler
//! facing "heavy traffic from millions of users" (ROADMAP north star)
//! cannot assume that — an unbounded queue under sustained overload grows
//! without limit, and every queued packet's delay cost keeps climbing
//! toward its deadline. [`AdmissionConfig`] bounds the backlog and
//! [`ShedPolicy`] decides what gives way when the bound is hit:
//!
//! - **reject-new** — the arriving packet is shed (never enqueued);
//! - **drop-lowest-value** — the queued packet with the lowest
//!   instantaneous delay cost is shed to make room;
//! - **force-flush-oldest** — the oldest queued packet is released for
//!   immediate transmission (not lost, just no longer deferred).
//!
//! Both the live runtime (`etrain-core`) and the simulator's
//! [`GuardedScheduler`](crate::GuardedScheduler) consume these types, so an
//! overload policy tuned in simulation carries over verbatim.

use serde::{Deserialize, Serialize};

/// What to do with an arrival that would push a waiting queue past its
/// configured capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ShedPolicy {
    /// Shed the arriving packet; the existing backlog is untouched.
    #[default]
    RejectNew,
    /// Shed the queued packet with the lowest instantaneous delay cost
    /// (the cheapest one to lose), then admit the arrival.
    DropLowestValue,
    /// Release the oldest queued packet for immediate transmission (a
    /// forced flush — it is transmitted, not lost), then admit the
    /// arrival.
    ForceFlushOldest,
}

impl std::fmt::Display for ShedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedPolicy::RejectNew => write!(f, "reject-new"),
            ShedPolicy::DropLowestValue => write!(f, "drop-lowest-value"),
            ShedPolicy::ForceFlushOldest => write!(f, "force-flush-oldest"),
        }
    }
}

/// Queue-capacity bounds plus the policy applied when they are hit.
///
/// The default is unbounded (no capacity, policy irrelevant), which
/// reproduces the paper's behaviour bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct AdmissionConfig {
    /// Maximum packets deferred across all apps; `None` is unbounded.
    pub global_capacity: Option<usize>,
    /// Maximum packets deferred per cargo app; `None` is unbounded.
    pub per_app_capacity: Option<usize>,
    /// What gives way when a capacity is hit.
    pub policy: ShedPolicy,
}

impl AdmissionConfig {
    /// No bounds at all — every submission is admitted (the paper's
    /// implicit configuration).
    pub fn unbounded() -> Self {
        AdmissionConfig::default()
    }

    /// Bounds the total deferred backlog across all apps.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity (a queue that can hold nothing cannot
    /// defer anything, which is the baseline scheduler, not admission
    /// control).
    pub fn with_global_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "global capacity must be at least 1");
        self.global_capacity = Some(capacity);
        self
    }

    /// Bounds the deferred backlog of each cargo app independently.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity.
    pub fn with_per_app_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "per-app capacity must be at least 1");
        self.per_app_capacity = Some(capacity);
        self
    }

    /// Selects the shed policy applied at capacity.
    pub fn with_policy(mut self, policy: ShedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Whether no capacity is configured (admission always succeeds).
    pub fn is_unbounded(&self) -> bool {
        self.global_capacity.is_none() && self.per_app_capacity.is_none()
    }

    /// Whether admitting one more packet, given the current global and
    /// per-app backlog sizes, would exceed a configured capacity.
    pub fn would_overflow(&self, global_pending: usize, app_pending: usize) -> bool {
        self.global_capacity.is_some_and(|c| global_pending >= c)
            || self.per_app_capacity.is_some_and(|c| app_pending >= c)
    }

    /// Whether the *per-app* bound specifically is the one that trips for
    /// a backlog of `app_pending`. Shed policies that make room by
    /// evicting must then pick their victim from the violating app —
    /// evicting from another app would admit the arrival with the per-app
    /// bound still exceeded.
    pub fn app_overflow(&self, app_pending: usize) -> bool {
        self.per_app_capacity.is_some_and(|c| app_pending >= c)
    }

    /// Checks invariants on a config deserialized from JSON (which
    /// bypasses the builder panics).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.global_capacity == Some(0) {
            return Err("global capacity must be at least 1".into());
        }
        if self.per_app_capacity == Some(0) {
            return Err("per-app capacity must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unbounded_and_never_overflows() {
        let cfg = AdmissionConfig::default();
        assert!(cfg.is_unbounded());
        assert!(!cfg.would_overflow(usize::MAX, usize::MAX));
        assert_eq!(cfg.policy, ShedPolicy::RejectNew);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn global_capacity_trips_at_bound() {
        let cfg = AdmissionConfig::unbounded().with_global_capacity(3);
        assert!(!cfg.would_overflow(2, 2));
        assert!(cfg.would_overflow(3, 0));
        assert!(!cfg.is_unbounded());
    }

    #[test]
    fn per_app_capacity_trips_independently() {
        let cfg = AdmissionConfig::unbounded().with_per_app_capacity(2);
        assert!(!cfg.would_overflow(100, 1));
        assert!(cfg.would_overflow(0, 2));
    }

    #[test]
    fn either_bound_trips() {
        let cfg = AdmissionConfig::unbounded()
            .with_global_capacity(10)
            .with_per_app_capacity(4);
        assert!(cfg.would_overflow(10, 0));
        assert!(cfg.would_overflow(5, 4));
        assert!(!cfg.would_overflow(9, 3));
    }

    #[test]
    fn zero_capacities_rejected() {
        let bad = AdmissionConfig {
            global_capacity: Some(0),
            ..AdmissionConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = AdmissionConfig {
            per_app_capacity: Some(0),
            ..AdmissionConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_global_capacity_panics() {
        let _ = AdmissionConfig::unbounded().with_global_capacity(0);
    }

    #[test]
    fn policy_display_and_serde() {
        assert_eq!(ShedPolicy::RejectNew.to_string(), "reject-new");
        assert_eq!(ShedPolicy::DropLowestValue.to_string(), "drop-lowest-value");
        assert_eq!(
            ShedPolicy::ForceFlushOldest.to_string(),
            "force-flush-oldest"
        );
        let cfg = AdmissionConfig::unbounded()
            .with_global_capacity(5)
            .with_policy(ShedPolicy::DropLowestValue);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: AdmissionConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
