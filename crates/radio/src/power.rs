use serde::{Deserialize, Serialize};

/// A uniformly sampled device power trace, mirroring the capture produced by
/// the paper's Monsoon power monitor + PowerTool setup (Sec. VI-D, Fig. 9):
/// the monitor supplies constant 3.7 V and samples current every 0.1 s, from
/// which energy is integrated.
///
/// Samples are absolute device power in milliwatts; sample `i` covers the
/// interval `[i·dt, (i+1)·dt)`.
///
/// # Examples
///
/// ```
/// use etrain_radio::PowerTrace;
///
/// let trace = PowerTrace::new(0.5, vec![100.0, 100.0, 300.0, 300.0]);
/// assert_eq!(trace.duration_s(), 2.0);
/// assert!((trace.energy_j() - 0.4).abs() < 1e-12);
/// assert_eq!(trace.peak_mw(), 300.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    dt_s: f64,
    samples_mw: Vec<f64>,
}

impl PowerTrace {
    /// Creates a trace with sampling interval `dt_s` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not strictly positive.
    pub fn new(dt_s: f64, samples_mw: Vec<f64>) -> Self {
        assert!(dt_s > 0.0, "sampling interval must be positive");
        PowerTrace { dt_s, samples_mw }
    }

    /// Sampling interval in seconds.
    pub fn dt_s(&self) -> f64 {
        self.dt_s
    }

    /// The power samples in milliwatts.
    pub fn samples_mw(&self) -> &[f64] {
        &self.samples_mw
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_mw.len()
    }

    /// Whether the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples_mw.is_empty()
    }

    /// Total duration covered by the trace in seconds.
    pub fn duration_s(&self) -> f64 {
        self.dt_s * self.samples_mw.len() as f64
    }

    /// Integrated energy (rectangle rule) in joules.
    pub fn energy_j(&self) -> f64 {
        self.samples_mw.iter().sum::<f64>() * self.dt_s / 1000.0
    }

    /// Integrated energy above the given baseline power, clamped at zero per
    /// sample, in joules. Used to separate radio energy from standby energy.
    pub fn energy_above_j(&self, baseline_mw: f64) -> f64 {
        self.samples_mw
            .iter()
            .map(|&p| (p - baseline_mw).max(0.0))
            .sum::<f64>()
            * self.dt_s
            / 1000.0
    }

    /// Mean power over the trace in milliwatts (0 for an empty trace).
    pub fn mean_mw(&self) -> f64 {
        if self.samples_mw.is_empty() {
            0.0
        } else {
            self.samples_mw.iter().sum::<f64>() / self.samples_mw.len() as f64
        }
    }

    /// Iterates over maximal runs of consecutive bit-identical samples as
    /// `(power_mw, sample_count)` pairs — the run-length view a trace
    /// sampled from a piecewise-constant [`Timeline`](crate::Timeline)
    /// compresses to (at most one run per state segment). Batch consumers
    /// integrate per run instead of per sample.
    pub fn runs(&self) -> impl Iterator<Item = (f64, usize)> + '_ {
        let samples = &self.samples_mw;
        let mut start = 0usize;
        std::iter::from_fn(move || {
            if start >= samples.len() {
                return None;
            }
            let value = samples[start];
            let mut end = start + 1;
            while end < samples.len() && samples[end].to_bits() == value.to_bits() {
                end += 1;
            }
            let run = (value, end - start);
            start = end;
            Some(run)
        })
    }

    /// The fraction of samples strictly above `baseline_mw` — the duty
    /// cycle of the radio's elevated-power states, computed per run via
    /// [`PowerTrace::runs`]. NaN-guarded like `RunReport::tail_fraction`:
    /// an empty trace reports 0 instead of NaN, and the result is clamped
    /// to `[0, 1]`.
    pub fn duty_above(&self, baseline_mw: f64) -> f64 {
        if self.samples_mw.is_empty() {
            return 0.0;
        }
        let above: usize = self
            .runs()
            .filter(|&(p, _)| p > baseline_mw)
            .map(|(_, count)| count)
            .sum();
        let ratio = above as f64 / self.samples_mw.len() as f64;
        if ratio.is_finite() {
            ratio.clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// Peak power in milliwatts (0 for an empty trace).
    pub fn peak_mw(&self) -> f64 {
        self.samples_mw.iter().copied().fold(0.0, f64::max)
    }

    /// Iterates over `(time_s, power_mw)` pairs, one per sample.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.samples_mw
            .iter()
            .enumerate()
            .map(move |(i, &p)| (i as f64 * self.dt_s, p))
    }

    /// Downsamples the trace by averaging blocks of `factor` samples,
    /// keeping total energy (useful for plotting long captures).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn downsample(&self, factor: usize) -> PowerTrace {
        assert!(factor > 0, "downsample factor must be positive");
        let samples = self
            .samples_mw
            .chunks(factor)
            .map(|chunk| chunk.iter().sum::<f64>() / chunk.len() as f64)
            .collect();
        PowerTrace::new(self.dt_s * factor as f64, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_integration() {
        let trace = PowerTrace::new(0.1, vec![1000.0; 10]); // 1 W for 1 s
        assert!((trace.energy_j() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_above_baseline_clamps() {
        let trace = PowerTrace::new(1.0, vec![10.0, 30.0, 50.0]);
        // Above 20 mW: 0 + 10 + 30 = 40 mW·s = 0.04 J.
        assert!((trace.energy_above_j(20.0) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_statistics() {
        let trace = PowerTrace::new(0.1, vec![]);
        assert!(trace.is_empty());
        assert_eq!(trace.energy_j(), 0.0);
        assert_eq!(trace.mean_mw(), 0.0);
        assert_eq!(trace.peak_mw(), 0.0);
        assert_eq!(trace.duration_s(), 0.0);
    }

    #[test]
    fn runs_compress_consecutive_equal_samples() {
        let trace = PowerTrace::new(1.0, vec![10.0, 10.0, 30.0, 10.0, 10.0, 10.0]);
        let runs: Vec<_> = trace.runs().collect();
        assert_eq!(runs, vec![(10.0, 2), (30.0, 1), (10.0, 3)]);
        assert!(PowerTrace::new(1.0, vec![]).runs().next().is_none());
    }

    #[test]
    fn duty_above_is_nan_guarded_ratio() {
        let trace = PowerTrace::new(1.0, vec![10.0, 30.0, 30.0, 50.0]);
        assert!((trace.duty_above(20.0) - 0.75).abs() < 1e-12);
        assert_eq!(trace.duty_above(100.0), 0.0);
        assert_eq!(trace.duty_above(-1.0), 1.0);
        // The empty-trace power integral and its ratios are 0, not NaN.
        let empty = PowerTrace::new(0.1, vec![]);
        assert_eq!(empty.duty_above(0.0), 0.0);
        assert_eq!(empty.energy_j(), 0.0);
        assert_eq!(empty.energy_above_j(10.0), 0.0);
    }

    #[test]
    fn iter_yields_timestamps() {
        let trace = PowerTrace::new(0.5, vec![1.0, 2.0]);
        let pairs: Vec<_> = trace.iter().collect();
        assert_eq!(pairs, vec![(0.0, 1.0), (0.5, 2.0)]);
    }

    #[test]
    fn downsample_preserves_energy() {
        let trace = PowerTrace::new(0.1, (0..100).map(|i| i as f64).collect());
        let down = trace.downsample(10);
        assert_eq!(down.len(), 10);
        assert!((down.energy_j() - trace.energy_j()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "sampling interval must be positive")]
    fn zero_dt_panics() {
        let _ = PowerTrace::new(0.0, vec![]);
    }
}
