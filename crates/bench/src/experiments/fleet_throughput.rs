//! Fleet throughput: how many devices one invocation simulates per
//! wall-clock second — the scale headline of the fleet subsystem.
//!
//! Quick mode runs 10⁵ devices (the CI smoke tier); full mode runs 10⁶.
//! `ETRAIN_FLEET_SIZE` overrides both. The headline is a wall-clock
//! measurement and therefore machine-dependent — this experiment is
//! excluded from the golden snapshot, like the other `*_speedup`
//! infrastructure experiments; its determinism gate (serial ≡ sharded,
//! fleet ≡ independent runs) lives in the fleet crate's conformance
//! tests, not here.

use crate::ExperimentResult;
use etrain_fleet::{run_fleet, FleetConfig};

use super::{fleet_devices, j};

/// Runs the throughput fleet and tabulates the scale measurements.
pub fn run(quick: bool) -> ExperimentResult {
    let devices = fleet_devices(quick, 100_000, 1_000_000);
    let result = run_fleet(&FleetConfig::paper_default(devices).seed(1));
    let snapshot = result.snapshot();

    let mut table = etrain_sim::Table::new(
        format!(
            "Fleet throughput — {} on {} devices",
            result.scheduler, devices
        ),
        &[
            "devices",
            "shards",
            "workers",
            "wall_s",
            "devices_per_s",
            "mean_extra_j",
        ],
    );
    table.push_row_strings(vec![
        snapshot.devices.to_string(),
        snapshot.shards.to_string(),
        snapshot.workers.to_string(),
        format!("{:.2}", snapshot.wall_s),
        format!("{:.0}", snapshot.devices_per_s),
        j(snapshot.fleet.mean_extra_j()),
    ]);

    let mut classes = etrain_sim::Table::new(
        "Per-class extra-energy distribution (J per app use)".to_owned(),
        &["class", "devices", "mean_j", "p50_j", "p95_j", "p99_j"],
    );
    for class in &snapshot.classes {
        classes.push_row_strings(vec![
            class.class.clone(),
            class.tally.devices.to_string(),
            j(class.mean_extra_j),
            j(class.p50_extra_j),
            j(class.p95_extra_j),
            j(class.p99_extra_j),
        ]);
    }

    ExperimentResult::from_tables(vec![table, classes])
        .headline("fleet_devices_per_s", snapshot.devices_per_s, "devices/s")
        .headline("fleet_devices", snapshot.devices as f64, "count")
        .headline("fleet_wall_s", snapshot.wall_s, "s")
        .headline("fleet_mean_extra_j", snapshot.fleet.mean_extra_j(), "J")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smoke tier shrinks the fleet through `ETRAIN_FLEET_SIZE`-style
    /// sizing by calling the sized internals directly — running the real
    /// 10⁵-device quick tier in a debug-mode unit test would dominate the
    /// whole suite's wall-clock.
    #[test]
    fn throughput_measurements_are_sane_on_a_small_fleet() {
        let result = run_fleet(&FleetConfig::paper_default(200).seed(1));
        let snapshot = result.snapshot();
        assert_eq!(snapshot.devices, 200);
        assert!(snapshot.devices_per_s > 0.0);
        assert!(snapshot.fleet.mean_extra_j() > 0.0);
        assert_eq!(snapshot.classes.len(), 3);
    }
}
