//! Reproduction binary for experiment `ablate_k` — see DESIGN.md for the
//! paper artifact it regenerates. Pass `--quick` for a fast smoke run.

fn main() {
    etrain_bench::run_binary("ablate_k");
}
