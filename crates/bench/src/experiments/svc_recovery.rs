//! Infrastructure: durable-service crash recovery.
//!
//! Three tiers, mirroring the chaos experiment's shape but aimed at the
//! `etrain-svc` write-ahead journal rather than the simulator:
//!
//! 1. **In-process crash/recover** — a [`DurableService`] is fed the
//!    deterministic harness script, dropped cold at seeded points
//!    (nothing between append and apply survives a drop — exactly the
//!    WAL's crash model), reopened, and compared fingerprint-for-
//!    fingerprint against a never-dropped [`ServiceState`] reference.
//!    Recovery wall-clock is the headline latency.
//! 2. **WAL corruption self-test** — torn-tail, truncated-segment, and
//!    flipped-checksum damage applied to real segment files must be
//!    detected and truncated by recovery, with the surviving prefix
//!    still replaying bit-for-bit (`etrain_chaos::run_wal_selftest`).
//! 3. **Process-level supervision** — when the `etrain-svcd` binary is
//!    built, the chaos supervisor SIGKILLs the real daemon at seeded
//!    points (including mid-append via the fault hook) and verifies
//!    zero-loss recovery; skipped (and reported as such) otherwise.
//!
//! The zero-loss acceptance bar: every trial in every tier recovers a
//! state bit-for-bit identical to the reference over the acknowledged
//! prefix — `svc_recovery_divergent` must be 0.

use std::path::PathBuf;
use std::time::Instant;

use crate::ExperimentResult;
use etrain_chaos::{daemon_binary, run_supervisor, run_wal_selftest};
use etrain_core::CoreConfig;
use etrain_sim::Table;
use etrain_svc::script::script;
use etrain_svc::{DurableService, ServiceState, SvcHealthConfig, WalConfig};

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("etrain-svc-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::create_dir_all(&dir);
    dir
}

struct InProcessTrial {
    kill_at: usize,
    identical: bool,
    recovery_ms: f64,
    records: u64,
}

/// Progressive drop/reopen trials over one WAL directory: apply up to
/// each kill point, drop the service cold, reopen, compare.
fn inprocess_trials(seed: u64, steps_total: usize, kill_points: &[usize]) -> Vec<InProcessTrial> {
    let dir = scratch(&format!("inproc-{seed}"));
    let mut cfg = WalConfig::new(&dir);
    cfg.fsync = false;
    cfg.segment_bytes = 4096; // several rotations per run
    let steps = script(seed, steps_total);
    let mut reference = ServiceState::new(CoreConfig::default(), SvcHealthConfig::default());
    let mut trials = Vec::new();
    let mut applied = 0usize;
    let (mut service, _) = DurableService::open(
        cfg.clone(),
        CoreConfig::default(),
        SvcHealthConfig::default(),
    )
    .expect("fresh WAL opens");
    for &kill_at in kill_points {
        let kill_at = kill_at.min(steps.len());
        while applied < kill_at {
            let step = &steps[applied];
            let _ = service.apply(step.command.clone());
            let _ = reference.apply(&step.command);
            applied += 1;
        }
        drop(service); // the crash: no checkpoint, no drain, no goodbye
        let reopened_at = Instant::now();
        let (recovered, summary) = DurableService::open(
            cfg.clone(),
            CoreConfig::default(),
            SvcHealthConfig::default(),
        )
        .expect("recovery succeeds");
        trials.push(InProcessTrial {
            kill_at,
            identical: recovered.fingerprint() == reference.fingerprint(),
            recovery_ms: reopened_at.elapsed().as_secs_f64() * 1000.0,
            records: summary.wal.records,
        });
        service = recovered;
    }
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
    trials
}

/// Runs the svc_recovery experiment.
pub fn run(quick: bool) -> ExperimentResult {
    // Tier 1: in-process crash/recover.
    let steps_total = if quick { 60 } else { 240 };
    let kill_count = if quick { 6 } else { 16 };
    let kill_points: Vec<usize> = (1..=kill_count)
        .map(|k| k * steps_total / (kill_count + 1))
        .collect();
    let trials = inprocess_trials(17, steps_total, &kill_points);
    let mut trial_table = Table::new(
        "In-process crash/recover — drop cold at seeded points, reopen, compare",
        &["kill_at", "records", "identical", "recovery_ms"],
    );
    let mut divergent = 0usize;
    let mut max_recovery_ms = 0.0f64;
    for trial in &trials {
        if !trial.identical {
            divergent += 1;
        }
        max_recovery_ms = max_recovery_ms.max(trial.recovery_ms);
        trial_table.push_row_strings(vec![
            trial.kill_at.to_string(),
            trial.records.to_string(),
            if trial.identical { "yes" } else { "NO" }.to_string(),
            format!("{:.2}", trial.recovery_ms),
        ]);
    }

    // Tier 2: WAL corruption self-test.
    let selftest_dir = scratch("selftest");
    let selftest = run_wal_selftest(17, if quick { 40 } else { 120 }, &selftest_dir);
    let _ = std::fs::remove_dir_all(&selftest_dir);
    let mut selftest_table = Table::new(
        "WAL corruption self-test — damaged segment tails must be detected",
        &[
            "corruption",
            "detected",
            "truncated_bytes",
            "prefix_matches",
        ],
    );
    let mut caught = 0usize;
    for result in &selftest {
        if result.detected && result.prefix_matches {
            caught += 1;
        }
        selftest_table.push_row_strings(vec![
            result.corruption.clone(),
            if result.detected { "yes" } else { "NO" }.to_string(),
            result.truncated_bytes.to_string(),
            if result.prefix_matches { "yes" } else { "NO" }.to_string(),
        ]);
    }

    // Tier 3: process-level supervision, when the daemon binary exists.
    let mut supervisor_table = Table::new(
        "Process supervision — SIGKILL + mid-append faults against the real daemon",
        &["trial", "acked", "identical", "recovery_ms"],
    );
    let mut process_trials = 0usize;
    let mut process_divergent = 0usize;
    match daemon_binary() {
        Some(bin) => {
            let dir = scratch("supervisor");
            let report = run_supervisor(&bin, &dir, 17, if quick { 5 } else { 10 });
            let _ = std::fs::remove_dir_all(&dir);
            process_trials = report.trials.len();
            for trial in &report.trials {
                if !trial.identical {
                    process_divergent += 1;
                }
                max_recovery_ms = max_recovery_ms.max(trial.recovery_ms);
                supervisor_table.push_row_strings(vec![
                    trial.kind.clone(),
                    trial.acked_steps.to_string(),
                    if trial.identical { "yes" } else { "NO" }.to_string(),
                    format!("{:.2}", trial.recovery_ms),
                ]);
            }
            for error in &report.errors {
                process_divergent += 1;
                supervisor_table.push_row_strings(vec![
                    format!("harness error: {error}"),
                    "-".into(),
                    "NO".into(),
                    "-".into(),
                ]);
            }
        }
        None => {
            supervisor_table.push_row_strings(vec![
                "skipped: etrain-svcd not built (cargo build -p etrain-svc)".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
    }

    ExperimentResult::from_tables(vec![trial_table, selftest_table, supervisor_table])
        .headline(
            "svc_recovery_divergent",
            (divergent + process_divergent) as f64,
            "trials",
        )
        .headline("svc_recovery_max_ms", max_recovery_ms, "ms")
        .headline(
            "svc_wal_corruptions_caught",
            caught as f64,
            format!("of {}", selftest.len()),
        )
        .headline("svc_process_trials", process_trials as f64, "count")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svc_recovery_is_zero_loss_in_quick_mode() {
        let result = run(true);
        let headline = |metric: &str| {
            result
                .headlines
                .iter()
                .find(|h| h.metric == metric)
                .unwrap_or_else(|| panic!("missing headline {metric}"))
                .value
        };
        assert_eq!(headline("svc_recovery_divergent"), 0.0);
        assert_eq!(headline("svc_wal_corruptions_caught"), 3.0);
        assert!(headline("svc_recovery_max_ms") > 0.0);
    }
}
