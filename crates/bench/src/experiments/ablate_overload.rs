//! Ablation: overload control and graceful degradation.
//!
//! The paper's workloads never stress the waiting queues; a deployed
//! scheduler facing heavy traffic must bound them. This ablation drives
//! the guarded eTrain scheduler far past the paper's arrival rate
//! (λ = 0.08 up to 16×) with a bounded backlog, and compares the three
//! shed policies against the unbounded control. The questions: how much
//! load does each policy shed before the queue bound, what does a forced
//! flush cost in energy, and does the deferral win survive overload?

use crate::ExperimentResult;
use etrain_sim::{AdmissionConfig, HealthConfig, SchedulerKind, ShedPolicy, Table};

use super::{j, paper_base, pct, s};

/// The guarded scheduler with the paper's knobs and the given bounds.
fn guarded(admission: AdmissionConfig) -> SchedulerKind {
    SchedulerKind::Guarded {
        theta: 2.0,
        k: None,
        health: HealthConfig::default(),
        admission,
    }
}

fn policy_label(policy: Option<ShedPolicy>) -> String {
    match policy {
        None => "unbounded".to_owned(),
        Some(p) => p.to_string(),
    }
}

/// Runs the overload ablation.
pub fn run(quick: bool) -> ExperimentResult {
    let base = paper_base(quick);
    let capacity = 32;
    let lambdas: &[f64] = if quick {
        &[0.08, 0.64, 1.28]
    } else {
        &[0.08, 0.16, 0.32, 0.64, 1.28]
    };
    let policies: [Option<ShedPolicy>; 4] = [
        None,
        Some(ShedPolicy::RejectNew),
        Some(ShedPolicy::DropLowestValue),
        Some(ShedPolicy::ForceFlushOldest),
    ];

    let mut table = Table::new(
        "Ablation — overload (arrival rate × shed policy, global capacity 32, Θ = 2)",
        &[
            "lambda",
            "policy",
            "energy_j",
            "delay_s",
            "violations",
            "shed",
            "forced_flushes",
            "completed",
        ],
    );
    for &lambda in lambdas {
        for policy in policies {
            let admission = match policy {
                None => AdmissionConfig::unbounded(),
                Some(p) => AdmissionConfig::unbounded()
                    .with_global_capacity(capacity)
                    .with_policy(p),
            };
            let report = base
                .clone()
                .lambda(lambda)
                .scheduler(guarded(admission))
                .run();
            table.push_row_strings(vec![
                format!("{lambda:.2}"),
                policy_label(policy),
                j(report.extra_energy_j),
                s(report.normalized_delay_s),
                pct(report.deadline_violation_ratio),
                report.packets_shed.to_string(),
                report.forced_flushes.to_string(),
                report.packets_completed.to_string(),
            ]);
        }
    }

    ExperimentResult::from_tables(vec![table]).headline_cell(
        "overload_forced_flushes_max_lambda",
        0,
        -1,
        "forced_flushes",
        "count",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_sheds_only_when_bounded() {
        let tables = run(true).tables;
        let csv = tables[0].to_csv();
        let rows: Vec<Vec<&str>> = csv
            .lines()
            .skip(1)
            .map(|r| r.split(',').collect())
            .collect();
        // The unbounded control never sheds or force-flushes.
        for row in rows.iter().filter(|r| r[1] == "unbounded") {
            assert_eq!(row[5], "0", "unbounded run shed: {row:?}");
            assert_eq!(row[6], "0", "unbounded run flushed: {row:?}");
        }
        // At the highest overload, reject-new and drop-lowest-value shed,
        // while force-flush-oldest converts pressure into early sends.
        let overloaded: Vec<_> = rows.iter().filter(|r| r[0] == "1.28").collect();
        for row in &overloaded {
            match row[1] {
                "reject-new" | "drop-lowest-value" => {
                    let shed: usize = row[5].parse().unwrap();
                    assert!(shed > 0, "overloaded run never shed: {row:?}");
                }
                "force-flush-oldest" => {
                    let flushes: usize = row[6].parse().unwrap();
                    assert!(flushes > 0, "overload never forced a flush: {row:?}");
                }
                _ => {}
            }
        }
    }
}
