//! Process-level crash tests of `etrain-svcd`.
//!
//! These spawn the real daemon binary, drive it over the TCP line
//! protocol, SIGKILL it at seeded points, restart it against the same
//! WAL directory, and compare the recovered fingerprint against a
//! never-killed in-process [`ServiceState`] reference fed the identical
//! command stream. The fault-hook test arms `ETRAIN_WAL_FAULT` so the
//! daemon tears its own WAL tail mid-append and proves recovery
//! truncates rather than crashes.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use etrain_core::CoreConfig;
use etrain_svc::script::{script, ScriptStep};
use etrain_svc::{ServiceState, SvcHealthConfig, WAL_ENV, WAL_FAULT_ENV};

fn tmp_dir(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "etrain-daemon-test-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A running daemon plus one protocol connection to it.
struct Daemon {
    child: Child,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    recovered_line: String,
}

impl Daemon {
    fn spawn(wal_dir: &Path, fault: Option<&str>) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_etrain-svcd"));
        cmd.env(WAL_ENV, wal_dir)
            .env("ETRAIN_SVC_ADDR", "127.0.0.1:0")
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        match fault {
            Some(spec) => cmd.env(WAL_FAULT_ENV, spec),
            None => cmd.env_remove(WAL_FAULT_ENV),
        };
        let mut child = cmd.spawn().expect("spawn etrain-svcd");
        let stdout = child.stdout.take().expect("captured stdout");
        let mut lines = BufReader::new(stdout);
        let mut recovered_line = String::new();
        lines
            .read_line(&mut recovered_line)
            .expect("RECOVERED line");
        assert!(
            recovered_line.starts_with("RECOVERED "),
            "unexpected first line: {recovered_line:?}"
        );
        let mut ready = String::new();
        lines.read_line(&mut ready).expect("READY line");
        let addr = ready
            .trim()
            .strip_prefix("READY ")
            .unwrap_or_else(|| panic!("unexpected second line: {ready:?}"))
            .to_string();
        let writer = TcpStream::connect(&addr).expect("connect to daemon");
        writer
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Daemon {
            child,
            reader,
            writer,
            recovered_line: recovered_line.trim().to_string(),
        }
    }

    /// Sends one request line and waits for the acknowledging response.
    fn roundtrip(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send request");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read response");
        response.trim().to_string()
    }

    /// Sends a request expected to kill the daemon (armed fault hook):
    /// the connection drops without a response.
    fn send_expecting_crash(&mut self, line: &str) {
        let _ = self.writer.write_all(format!("{line}\n").as_bytes());
        let mut response = String::new();
        // EOF or reset either way: the daemon died before answering.
        let got = self.reader.read_line(&mut response).unwrap_or(0);
        assert_eq!(got, 0, "daemon answered {response:?} instead of crashing");
    }

    fn fingerprint(&mut self) -> u64 {
        let response = self.roundtrip("FPRINT");
        let hex = response
            .strip_prefix("OK FPRINT ")
            .unwrap_or_else(|| panic!("unexpected FPRINT response: {response}"));
        u64::from_str_radix(hex, 16).expect("fingerprint hex")
    }

    fn sigkill(mut self) {
        self.child.kill().expect("SIGKILL daemon");
        let _ = self.child.wait();
    }

    fn wait_exit_code(mut self) -> i32 {
        let status = self.child.wait().expect("wait for daemon");
        status.code().unwrap_or(-1)
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn reference() -> ServiceState {
    ServiceState::new(CoreConfig::default(), SvcHealthConfig::default())
}

#[test]
fn daemon_survives_seeded_kills_bit_for_bit() {
    let steps: Vec<ScriptStep> = script(42, 40);
    let wal_dir = tmp_dir("kills");
    // ≥5 seeded kill points, spread over the script (in acked-command
    // counts; the daemon is SIGKILLed right after the ack arrives).
    let kill_points = [5usize, 11, 17, 24, 31, 38];

    let mut reference = reference();
    let mut applied = 0usize;
    let mut daemon = Daemon::spawn(&wal_dir, None);
    for (kill_no, &kill_at) in kill_points.iter().enumerate() {
        while applied < kill_at {
            let step = &steps[applied];
            let response = daemon.roundtrip(&step.line);
            assert!(
                response.starts_with("OK") || response.starts_with("ERR core rejected"),
                "step {applied} ({}) -> {response}",
                step.line
            );
            let _ = reference.apply(&step.command);
            applied += 1;
        }
        let live_fp = daemon.fingerprint();
        assert_eq!(
            live_fp,
            reference.fingerprint(),
            "kill {kill_no}: live daemon diverged from reference at step {applied}"
        );
        daemon.sigkill();

        daemon = Daemon::spawn(&wal_dir, None);
        assert_eq!(
            daemon.fingerprint(),
            reference.fingerprint(),
            "kill {kill_no}: recovered daemon diverged from reference at step {applied}"
        );
    }
    // Finish the script after the last restart and compare once more.
    while applied < steps.len() {
        let step = &steps[applied];
        let _ = daemon.roundtrip(&step.line);
        let _ = reference.apply(&step.command);
        applied += 1;
    }
    assert_eq!(daemon.fingerprint(), reference.fingerprint());
    daemon.sigkill();
    let _ = std::fs::remove_dir_all(&wal_dir);
}

#[test]
fn duplicate_submit_after_kill_is_not_double_applied() {
    let wal_dir = tmp_dir("dup");
    let mut daemon = Daemon::spawn(&wal_dir, None);
    assert_eq!(daemon.roundtrip("REGTRAIN WeChat"), "OK TRAIN 0");
    assert_eq!(daemon.roundtrip("REGCARGO Mail mail 300"), "OK CARGO 0");
    assert_eq!(
        daemon.roundtrip("SUBMIT once 0 up 4096 1.0"),
        "OK SUBMITTED 0"
    );
    daemon.sigkill();

    // The ack arrived before the kill, so the submit is durable: the
    // retry must be answered from the recovered dedup table, not
    // admitted a second time.
    let mut daemon = Daemon::spawn(&wal_dir, None);
    assert_eq!(
        daemon.roundtrip("SUBMIT once 0 up 4096 2.0"),
        "OK DUP SUBMITTED 0"
    );
    let stats = daemon.roundtrip("STATS");
    assert!(
        stats.contains("\"submitted\":1") || stats.contains("\"submitted\": 1"),
        "exactly one admission expected: {stats}"
    );
    daemon.sigkill();
    let _ = std::fs::remove_dir_all(&wal_dir);
}

#[test]
fn armed_fault_hook_tears_tail_and_recovery_truncates() {
    let wal_dir = tmp_dir("fault");
    // Records: 0 REGTRAIN, 1 REGCARGO, 2 first SUBMIT; the fault fires
    // on record 3 — the second SUBMIT's append is torn mid-payload and
    // the daemon must die with the dedicated exit code.
    let mut daemon = Daemon::spawn(&wal_dir, Some("torn@3"));
    assert_eq!(daemon.roundtrip("REGTRAIN WeChat"), "OK TRAIN 0");
    assert_eq!(daemon.roundtrip("REGCARGO Mail mail 300"), "OK CARGO 0");
    assert_eq!(daemon.roundtrip("SUBMIT a 0 up 1000 1.0"), "OK SUBMITTED 0");
    daemon.send_expecting_crash("SUBMIT b 0 up 2000 2.0");
    assert_eq!(daemon.wait_exit_code(), etrain_svc::FAULT_EXIT_CODE);

    // Restart without the fault: recovery truncates the torn frame and
    // keeps the three acked records.
    let mut daemon = Daemon::spawn(&wal_dir, None);
    let recovered = daemon.recovered_line.clone();
    assert!(
        recovered.contains("records=3") && !recovered.contains("truncated_bytes=0"),
        "expected 3 records and a truncated tail: {recovered}"
    );
    // The torn submit was never acked and never applied; resending it
    // is a fresh admission, not a duplicate.
    assert_eq!(daemon.roundtrip("SUBMIT b 0 up 2000 2.0"), "OK SUBMITTED 1");
    daemon.sigkill();
    let _ = std::fs::remove_dir_all(&wal_dir);
}

#[test]
fn invalid_env_knobs_exit_2() {
    for (key, value) in [
        ("ETRAIN_SVC_ADDR", "not-an-addr"),
        (WAL_FAULT_ENV, "maybe@later"),
    ] {
        let status = Command::new(env!("CARGO_BIN_EXE_etrain-svcd"))
            .env(WAL_ENV, tmp_dir("env"))
            .env("ETRAIN_SVC_ADDR", "127.0.0.1:0")
            .env(key, value)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("run etrain-svcd");
        assert_eq!(status.code(), Some(2), "{key}={value}");
    }
}
