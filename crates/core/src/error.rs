use etrain_trace::{CargoAppId, TrainAppId};

use crate::request::RequestId;

/// Error produced by the eTrain system runtime.
///
/// Marked `#[non_exhaustive]`: the failure taxonomy grows as the runtime
/// gains subsystems (the retry layer added [`CoreError::UnknownRequest`]),
/// so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A request referenced a cargo app that never registered.
    UnknownCargoApp {
        /// The unknown app id.
        app: CargoAppId,
    },
    /// A heartbeat referenced a train app that never registered.
    UnknownTrainApp {
        /// The unknown train id.
        train: TrainAppId,
    },
    /// A result was reported for a request the core is not awaiting: never
    /// issued, already closed, or reported twice.
    UnknownRequest {
        /// The unknown or already-settled request id.
        request: RequestId,
    },
    /// Time went backwards (the system clock is monotone).
    TimeWentBackwards {
        /// The current system time in seconds.
        now_s: f64,
        /// The earlier timestamp that was supplied.
        supplied_s: f64,
    },
    /// The threaded runtime has been shut down.
    SystemStopped,
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::UnknownCargoApp { app } => {
                write!(f, "cargo app {app} is not registered")
            }
            CoreError::UnknownTrainApp { train } => {
                write!(f, "train app {train} is not registered")
            }
            CoreError::UnknownRequest { request } => {
                write!(f, "request {request} is not awaiting a transmission result")
            }
            CoreError::TimeWentBackwards { now_s, supplied_s } => write!(
                f,
                "time went backwards: system is at {now_s} s, got {supplied_s} s"
            ),
            CoreError::SystemStopped => f.write_str("the eTrain system has been shut down"),
        }
    }
}

impl std::error::Error for CoreError {}
