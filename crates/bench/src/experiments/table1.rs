//! Table 1: heartbeat cycles of popular apps across devices.
//!
//! Paper result: on Android each app runs its own cycle (WeChat 270 s,
//! WhatsApp 240 s, QQ 300 s, RenRen 300 s, NetEase 60–480 s adaptive); on
//! iOS every app shares the 1800 s APNS connection. The reproduction
//! synthesizes each device's heartbeat stream (with ±2 s jitter standing
//! in for measurement noise) and reports what the cycle detector recovers
//! — the observational equivalent of the paper's Wireshark analysis.

use crate::ExperimentResult;
use etrain_hb::{DetectedPattern, HeartbeatMonitor};
use etrain_sim::Table;
use etrain_trace::heartbeats::TrainAppSpec;
use etrain_trace::TrainAppId;

/// Runs the Table 1 reproduction.
pub fn run(quick: bool) -> ExperimentResult {
    let horizon = if quick { 3.0 * 3600.0 } else { 8.0 * 3600.0 };
    let android_devices = [
        "HTC Sensation Z710e",
        "Samsung Note II",
        "Samsung GALAXY S IV",
    ];
    let apps = [
        TrainAppSpec::wechat(),
        TrainAppSpec::whatsapp(),
        TrainAppSpec::qq(),
        TrainAppSpec::renren(),
        TrainAppSpec::netease(),
    ];

    let mut table = Table::new(
        "Table 1 — detected heartbeat cycles",
        &["device", "WeChat", "WhatsApp", "QQ", "RenRen", "NetEase"],
    );
    for (d, device) in android_devices.iter().enumerate() {
        let mut row = vec![(*device).to_owned()];
        for (a, app) in apps.iter().enumerate() {
            let spec = app.clone().with_jitter(2.0);
            row.push(detect(&spec, horizon, (d * 10 + a) as u64));
        }
        table.push_row_strings(row);
    }
    // iOS: one shared APNS stream for every app.
    let apns = detect(
        &TrainAppSpec::ios_apns().with_jitter(2.0),
        12.0 * 3600.0,
        99,
    );
    let mut row = vec!["iPhone 4 / iPhone 5 (APNS)".to_owned()];
    for _ in 0..apps.len() {
        row.push(apns.clone());
    }
    table.push_row_strings(row);
    ExperimentResult::from_tables(vec![table]).headline_cell("wechat_cycle_s", 0, 0, "WeChat", "s")
}

fn detect(spec: &TrainAppSpec, horizon: f64, seed: u64) -> String {
    let mut rng = etrain_trace::rng::seeded(seed);
    let beats = spec.generate(TrainAppId(0), horizon, &mut rng);
    let mut monitor = HeartbeatMonitor::new();
    for hb in &beats {
        monitor.observe(TrainAppId(0), hb.time_s);
    }
    match monitor.pattern(TrainAppId(0)) {
        DetectedPattern::Fixed { cycle_s, .. } => format!("{cycle_s:.0}s"),
        DetectedPattern::Adaptive { levels_s, .. } => format!(
            "{:.0}-{:.0}s",
            levels_s.first().copied().unwrap_or(0.0),
            levels_s.last().copied().unwrap_or(0.0)
        ),
        DetectedPattern::Unknown => "?".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seconds(cell: &str) -> f64 {
        cell.trim_end_matches('s')
            .parse()
            .expect("fixed-cycle cell")
    }

    #[test]
    fn android_cycles_match_paper() {
        // Jitter stands in for measurement noise, so allow ±3 s on the
        // detected medians.
        let tables = run(true).tables;
        let csv = tables[0].to_csv();
        let first_android = csv.lines().nth(1).unwrap();
        let cells: Vec<&str> = first_android.split(',').collect();
        assert!(
            (seconds(cells[1]) - 270.0).abs() <= 3.0,
            "WeChat {}",
            cells[1]
        );
        assert!(
            (seconds(cells[2]) - 240.0).abs() <= 3.0,
            "WhatsApp {}",
            cells[2]
        );
        assert!((seconds(cells[3]) - 300.0).abs() <= 3.0, "QQ {}", cells[3]);
        assert!(
            (seconds(cells[4]) - 300.0).abs() <= 3.0,
            "RenRen {}",
            cells[4]
        );
        assert!(cells[5].contains('-'), "NetEase adaptive: {}", cells[5]);
    }

    #[test]
    fn ios_shares_one_long_cycle() {
        let tables = run(true).tables;
        let csv = tables[0].to_csv();
        let ios = csv.lines().last().unwrap();
        let cell = ios.split(',').nth(1).unwrap();
        assert!((seconds(cell) - 1800.0).abs() <= 5.0, "{ios}");
    }
}
