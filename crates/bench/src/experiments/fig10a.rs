//! Fig. 10(a): controlled experiment — impact of the number of train apps.
//!
//! Paper methodology: run the three cargo apps with 0 ("NULL"), 1, 2 and 3
//! train apps; report (red) the energy of heartbeats alone, (blue) the
//! additional energy of the cargo transmissions under eTrain, and (green)
//! the average packet delay. Paper results: cargo-only saving ≈ 45 %
//! regardless of the number of trains; total saving 12–33 %; delay with 3
//! trains is half the delay with 1 train; with no trains all packets go
//! out on arrival (zero delay).

use crate::ExperimentResult;
use etrain_sim::{RunGrid, RunSpec, SchedulerKind, Table};
use etrain_trace::heartbeats::TrainAppSpec;
use etrain_trace::packets::CargoWorkload;

use super::{j, paper_base, pct, s};

/// Runs the Fig. 10(a) reproduction.
pub fn run(quick: bool) -> ExperimentResult {
    let base = paper_base(quick);
    let all_trains = TrainAppSpec::paper_trio();
    let etrain = SchedulerKind::ETrain {
        theta: 2.0,
        k: None,
    };

    let mut table = Table::new(
        "Fig. 10(a) — impact of train apps (Θ = 2, k = ∞)",
        &[
            "trains",
            "hb_energy_j",
            "cargo_energy_j",
            "total_j",
            "delay_s",
            "cargo_saving",
            "total_saving",
        ],
    );

    // Three grid jobs per train count (heartbeats-only reference, eTrain,
    // baseline), run concurrently; the n = 0 row has no heartbeat job.
    let mut grid = RunGrid::new();
    for n in 0..=all_trains.len() {
        let scenario = base.clone().trains(all_trains[..n].to_vec());
        if n > 0 {
            grid.push(RunSpec::new(
                format!("hb-only/trains={n}"),
                scenario
                    .clone()
                    .workload(CargoWorkload::new(Vec::new()))
                    .scheduler(SchedulerKind::Baseline),
            ));
        }
        grid.push(RunSpec::new(
            format!("etrain/trains={n}"),
            scenario.clone().scheduler(etrain),
        ));
        grid.push(RunSpec::new(
            format!("baseline/trains={n}"),
            scenario.scheduler(SchedulerKind::Baseline),
        ));
    }
    let reports = grid.run();
    let mut next = reports.iter();

    for n in 0..=all_trains.len() {
        let hb_energy = if n == 0 {
            0.0
        } else {
            next.next().expect("hb-only report").extra_energy_j
        };
        let report = next.next().expect("etrain report");
        let cargo_energy = report.extra_energy_j - hb_energy;

        // The same trains + cargo under the baseline, for the saving columns.
        let baseline = next.next().expect("baseline report");
        let baseline_cargo = baseline.extra_energy_j - hb_energy;

        table.push_row_strings(vec![
            if n == 0 {
                "NULL".to_owned()
            } else {
                n.to_string()
            },
            j(hb_energy),
            j(cargo_energy),
            j(report.extra_energy_j),
            s(report.normalized_delay_s),
            pct(1.0 - cargo_energy / baseline_cargo.max(f64::MIN_POSITIVE)),
            pct(1.0 - report.extra_energy_j / baseline.extra_energy_j),
        ]);
    }
    ExperimentResult::from_tables(vec![table]).headline_cell(
        "total_saving_3_trains",
        0,
        -1,
        "total_saving",
        "%",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(quick: bool) -> Vec<Vec<String>> {
        run(quick).tables[0]
            .to_csv()
            .lines()
            .skip(1)
            .map(|r| r.split(',').map(str::to_owned).collect())
            .collect()
    }

    #[test]
    fn null_case_has_zero_delay() {
        let rows = rows(true);
        let delay: f64 = rows[0][4].parse().unwrap();
        assert!(delay < 2.0, "NULL delay should be ~0, got {delay}");
    }

    #[test]
    fn more_trains_reduce_delay() {
        let rows = rows(true);
        let d1: f64 = rows[1][4].parse().unwrap();
        let d3: f64 = rows[3][4].parse().unwrap();
        assert!(
            d3 < d1 * 0.8,
            "3 trains ({d3} s) should cut delay well below 1 train ({d1} s)"
        );
    }

    #[test]
    fn cargo_saving_is_substantial_with_three_trains() {
        // Short quick-mode horizons starve the 1-train case of trains, so
        // only the 3-train row (the paper's headline) is asserted here;
        // the full-length run in EXPERIMENTS.md covers every row.
        let rows = rows(true);
        let saving: f64 = rows[3][5].trim_end_matches('%').parse().unwrap();
        assert!(saving > 20.0, "3-train cargo saving {saving}% too small");
    }
}
