//! Deterministic parallel execution of scenario grids.
//!
//! Every experiment layer above the simulator — Θ sweeps, E-D curves,
//! seed replication, scheduler comparisons, the bench harness — is a grid
//! of independent [`Scenario`] runs. [`RunGrid`] executes such a grid on a
//! crossbeam-channel worker pool and guarantees the result is **bit-for-bit
//! identical** to serial execution:
//!
//! - each job is an independent, deterministic function of its
//!   [`RunSpec`] (the engine holds no global state, and per-run RNG
//!   streams are derived from the scenario seed);
//! - jobs complete out of order, but results are re-assembled in
//!   job-index order before they are returned;
//! - trace synthesis is shared through a [`TraceCache`] keyed by
//!   [`Scenario::trace_key`], which never changes what is generated —
//!   only how often.
//!
//! The pool is sized from `std::thread::available_parallelism`, can be
//! overridden by the `ETRAIN_JOBS` environment variable or the
//! [`RunGrid::jobs`] builder, and `jobs = 1` degenerates to fully in-line
//! serial execution (no threads spawned at all).

use std::collections::HashMap;
use std::sync::Mutex;

use crossbeam::channel;

use crate::metrics::RunReport;
use crate::oracle::OracleMode;
use crate::scenario::{Scenario, ScenarioError, SchedulerKind, TraceBundle};

/// The environment variable that overrides the worker-pool size.
pub const JOBS_ENV: &str = "ETRAIN_JOBS";

/// One job of a grid: a scenario plus the labelling that ties its report
/// back to the experiment axis that produced it.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Human-readable job label (`"Θ=0.2"`, `"seed=7"`, a scheduler
    /// display name, ...). Used in error messages and result tables.
    pub label: String,
    /// The swept knob value, when the grid has a numeric axis.
    pub knob: Option<f64>,
    /// The full scenario to run.
    pub scenario: Scenario,
}

impl RunSpec {
    /// A job with a label and no numeric knob.
    pub fn new(label: impl Into<String>, scenario: Scenario) -> Self {
        RunSpec {
            label: label.into(),
            knob: None,
            scenario,
        }
    }

    /// A job on a numeric axis (Θ, λ, deadline, seed, ...).
    pub fn with_knob(label: impl Into<String>, knob: f64, scenario: Scenario) -> Self {
        RunSpec {
            label: label.into(),
            knob: Some(knob),
            scenario,
        }
    }
}

/// A grid job that failed [`Scenario::validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunError {
    /// Index of the failing job in the grid.
    pub index: usize,
    /// The failing job's label.
    pub label: String,
    /// Why the scenario cannot run.
    pub error: ScenarioError,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "grid job #{} ({}): {}",
            self.index, self.label, self.error
        )
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// A concurrent trace-artifact cache: [`TraceBundle`]s keyed by
/// [`Scenario::trace_key`].
///
/// Generation happens outside the lock, so two workers may briefly
/// synthesize the same key concurrently; the first insert wins and —
/// because generation is deterministic — both candidates are
/// bit-identical, so the race never affects results.
#[derive(Debug, Default)]
pub struct TraceCache {
    entries: Mutex<HashMap<u64, TraceBundle>>,
}

impl TraceCache {
    /// An empty cache.
    pub fn new() -> Self {
        TraceCache::default()
    }

    /// Returns the bundle for `scenario`'s trace key, generating and
    /// memoizing it on first use.
    pub fn get_or_generate(&self, scenario: &Scenario) -> TraceBundle {
        let key = scenario.trace_key();
        if let Some(bundle) = self.lock().get(&key) {
            return bundle.clone();
        }
        let fresh = scenario.generate_traces();
        self.lock().entry(key).or_insert(fresh).clone()
    }

    /// Number of distinct trace keys generated so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been generated yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, TraceBundle>> {
        self.entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A batch of scenario jobs executed with deterministic output order.
///
/// # Examples
///
/// ```
/// use etrain_sim::{RunGrid, RunSpec, Scenario, SchedulerKind};
///
/// let base = Scenario::paper_default().duration_secs(600).seed(1);
/// let grid = RunGrid::from_specs(
///     [0.0_f64, 1.0, 2.0]
///         .iter()
///         .map(|&theta| {
///             RunSpec::with_knob(
///                 format!("Θ={theta}"),
///                 theta,
///                 base.clone()
///                     .scheduler(SchedulerKind::ETrain { theta, k: None }),
///             )
///         })
///         .collect(),
/// );
/// let reports = grid.run();
/// assert_eq!(reports.len(), 3);
/// // Results are in job order no matter how many workers ran them.
/// assert_eq!(reports, grid.jobs(1).run());
/// ```
#[derive(Debug)]
pub struct RunGrid {
    specs: Vec<RunSpec>,
    jobs: Option<usize>,
}

impl RunGrid {
    /// An empty grid.
    pub fn new() -> Self {
        RunGrid {
            specs: Vec::new(),
            jobs: None,
        }
    }

    /// A grid over the given jobs.
    pub fn from_specs(specs: Vec<RunSpec>) -> Self {
        RunGrid { specs, jobs: None }
    }

    /// One job per scheduler kind on a shared base scenario (the
    /// comparison shape).
    pub fn over_schedulers(base: &Scenario, kinds: &[SchedulerKind]) -> Self {
        RunGrid::from_specs(
            kinds
                .iter()
                .map(|&kind| RunSpec::new(kind.to_string(), base.clone().scheduler(kind)))
                .collect(),
        )
    }

    /// One job per seed on a shared base scenario (the replication shape).
    pub fn over_seeds(base: &Scenario, seeds: &[u64]) -> Self {
        RunGrid::from_specs(
            seeds
                .iter()
                .map(|&seed| {
                    RunSpec::with_knob(format!("seed={seed}"), seed as f64, base.clone().seed(seed))
                })
                .collect(),
        )
    }

    /// Appends a job.
    pub fn push(&mut self, spec: RunSpec) {
        self.specs.push(spec);
    }

    /// Builder: appends a job.
    pub fn spec(mut self, spec: RunSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Builder: overrides the worker count (`1` forces in-line serial
    /// execution). Takes precedence over `ETRAIN_JOBS` and the detected
    /// parallelism; `0` is treated as `1`.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// Builder: sets the simulation-oracle mode on every job in the grid
    /// (see [`Scenario::oracle`]). Apply after all specs are pushed.
    pub fn oracle(mut self, mode: OracleMode) -> Self {
        for spec in &mut self.specs {
            spec.scenario = spec.scenario.clone().oracle(mode);
        }
        self
    }

    /// Number of jobs in the grid.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the grid has no jobs.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The job specs, in job order.
    pub fn specs(&self) -> &[RunSpec] {
        &self.specs
    }

    /// The worker count this grid will use: the builder override if set,
    /// else `ETRAIN_JOBS` if parseable, else the machine's available
    /// parallelism — never more workers than jobs.
    pub fn effective_jobs(&self) -> usize {
        let configured = self
            .jobs
            .or_else(|| jobs_from_env(std::env::var(JOBS_ENV).ok().as_deref()))
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        configured.clamp(1, self.specs.len().max(1))
    }

    /// Runs every job and returns the reports in job-index order.
    ///
    /// # Panics
    ///
    /// Panics if any job's scenario fails validation (see
    /// [`RunGrid::try_run`] for the fallible form).
    pub fn run(&self) -> Vec<RunReport> {
        self.try_run().expect("invalid grid job")
    }

    /// Fallible [`RunGrid::run`]: returns the lowest-index failure, if
    /// any — regardless of worker count or completion order.
    ///
    /// # Errors
    ///
    /// Returns the first (by job index) scenario-validation failure.
    pub fn try_run(&self) -> Result<Vec<RunReport>, RunError> {
        self.try_run_with_cache(&TraceCache::new())
    }

    /// [`RunGrid::try_run`] against a caller-owned trace cache, so
    /// several grids over the same workloads (e.g. the per-figure
    /// experiments of one bench invocation) share synthesis.
    ///
    /// # Errors
    ///
    /// Returns the first (by job index) scenario-validation failure.
    pub fn try_run_with_cache(&self, cache: &TraceCache) -> Result<Vec<RunReport>, RunError> {
        let workers = self.effective_jobs();
        let outcomes = if workers <= 1 || self.specs.len() <= 1 {
            self.run_serial(cache)
        } else {
            self.run_pool(cache, workers)
        };
        let mut reports = Vec::with_capacity(outcomes.len());
        for (index, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(report) => reports.push(report),
                Err(error) => {
                    return Err(RunError {
                        index,
                        label: self.specs[index].label.clone(),
                        error,
                    })
                }
            }
        }
        Ok(reports)
    }

    /// In-line execution on the calling thread (the `jobs = 1` path).
    fn run_serial(&self, cache: &TraceCache) -> Vec<Result<RunReport, ScenarioError>> {
        self.specs.iter().map(|spec| run_one(spec, cache)).collect()
    }

    /// Worker-pool execution: jobs are drawn from a shared channel and
    /// finish out of order; the indexed result channel restores job order.
    fn run_pool(
        &self,
        cache: &TraceCache,
        workers: usize,
    ) -> Vec<Result<RunReport, ScenarioError>> {
        let (job_tx, job_rx) = channel::unbounded::<(usize, &RunSpec)>();
        let (result_tx, result_rx) =
            channel::unbounded::<(usize, Result<RunReport, ScenarioError>)>();
        for job in self.specs.iter().enumerate() {
            job_tx.send(job).expect("job receiver alive");
        }
        drop(job_tx);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let job_rx = job_rx.clone();
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    while let Ok((index, spec)) = job_rx.recv() {
                        if result_tx.send((index, run_one(spec, cache))).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        drop(result_tx);

        let mut slots: Vec<Option<Result<RunReport, ScenarioError>>> =
            (0..self.specs.len()).map(|_| None).collect();
        for (index, outcome) in result_rx.try_iter() {
            slots[index] = Some(outcome);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every job reports exactly once"))
            .collect()
    }
}

impl Default for RunGrid {
    fn default() -> Self {
        RunGrid::new()
    }
}

fn run_one(spec: &RunSpec, cache: &TraceCache) -> Result<RunReport, ScenarioError> {
    spec.scenario.validate()?;
    let traces = cache.get_or_generate(&spec.scenario);
    spec.scenario
        .try_run_with_output_on(&traces)
        .map(|(report, _)| report)
}

/// Parses an `ETRAIN_JOBS` value; `None`/unparseable/zero mean "not set".
fn jobs_from_env(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&jobs| jobs >= 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::BandwidthSource;

    fn theta_grid(jobs: usize) -> RunGrid {
        let base = Scenario::paper_default().duration_secs(600).seed(3);
        RunGrid::from_specs(
            [0.0_f64, 0.5, 1.0, 2.0]
                .iter()
                .map(|&theta| {
                    RunSpec::with_knob(
                        format!("Θ={theta}"),
                        theta,
                        base.clone()
                            .scheduler(SchedulerKind::ETrain { theta, k: None }),
                    )
                })
                .collect(),
        )
        .jobs(jobs)
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let serial = theta_grid(1).run();
        let parallel = theta_grid(4).run();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn results_are_in_job_index_order() {
        let grid = theta_grid(3);
        let reports = grid.run();
        for (spec, report) in grid.specs().iter().zip(&reports) {
            assert_eq!(report.scheduler, "eTrain", "{}", spec.label);
        }
        // Direct per-spec runs agree position by position.
        for (spec, report) in grid.specs().iter().zip(&reports) {
            assert_eq!(&spec.scenario.run(), report);
        }
    }

    #[test]
    fn grid_over_one_seed_generates_traces_once() {
        let cache = TraceCache::new();
        let grid = theta_grid(2);
        grid.try_run_with_cache(&cache).unwrap();
        assert_eq!(cache.len(), 1, "same workload+seed must share one bundle");
    }

    #[test]
    fn distinct_seeds_get_distinct_bundles() {
        let cache = TraceCache::new();
        let base = Scenario::paper_default().duration_secs(600);
        RunGrid::over_seeds(&base, &[1, 2, 3])
            .jobs(2)
            .try_run_with_cache(&cache)
            .unwrap();
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn over_schedulers_labels_with_display() {
        let base = Scenario::paper_default().duration_secs(600).seed(2);
        let grid = RunGrid::over_schedulers(
            &base,
            &[
                SchedulerKind::Baseline,
                SchedulerKind::ETime { v_bytes: 20_000.0 },
            ],
        );
        assert_eq!(grid.specs()[0].label, "Baseline");
        assert_eq!(grid.specs()[1].label, "eTime(V=20000 B)");
        let reports = grid.run();
        assert_eq!(reports[0].scheduler, "Baseline");
        assert_eq!(reports[1].scheduler, "eTime");
    }

    #[test]
    fn invalid_job_reports_lowest_index_regardless_of_jobs() {
        for jobs in [1, 4] {
            let base = Scenario::paper_default().duration_secs(600).seed(1);
            let grid = RunGrid::new()
                .spec(RunSpec::new("ok", base.clone()))
                .spec(RunSpec::new(
                    "bad-bandwidth",
                    base.clone().bandwidth(BandwidthSource::Constant(0.0)),
                ))
                .spec(RunSpec::new("bad-duration", base.clone().duration_secs(0)))
                .jobs(jobs);
            let err = grid.try_run().unwrap_err();
            assert_eq!(err.index, 1, "jobs={jobs}");
            assert_eq!(err.label, "bad-bandwidth");
            assert!(err.to_string().contains("grid job #1"));
        }
    }

    #[test]
    fn empty_grid_runs_to_empty() {
        assert!(RunGrid::new().run().is_empty());
        assert_eq!(RunGrid::new().effective_jobs(), 1);
    }

    #[test]
    fn jobs_env_parsing() {
        assert_eq!(jobs_from_env(None), None);
        assert_eq!(jobs_from_env(Some("")), None);
        assert_eq!(jobs_from_env(Some("zero")), None);
        assert_eq!(jobs_from_env(Some("0")), None);
        assert_eq!(jobs_from_env(Some("4")), Some(4));
        assert_eq!(jobs_from_env(Some(" 8 ")), Some(8));
    }

    #[test]
    fn builder_jobs_override_wins_and_is_clamped() {
        let grid = theta_grid(64);
        // Never more workers than jobs.
        assert_eq!(grid.effective_jobs(), 4);
        let serial = theta_grid(0);
        assert_eq!(serial.effective_jobs(), 1);
    }
}
