//! Retry policy: exponential backoff with jitter, bounded attempts, and
//! deadline-aware give-up.
//!
//! When a released transmission fails (see `etrain-trace::faults`), the
//! energy it burned is already spent — blindly re-transmitting a packet
//! that keeps failing turns the paper's energy savings negative. The
//! [`RetryPolicy`] bounds that waste: delays grow exponentially per
//! attempt (capped), a jitter fraction decorrelates retry storms, and a
//! packet whose *age* (time since original arrival) would exceed
//! `give_up_age_s` by its next attempt is abandoned instead — an explicit
//! terminal state the metrics layer reports as `packets_abandoned`.

use serde::{Deserialize, Serialize};

/// What to do with a packet after a failed transfer attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetryDecision {
    /// Try again after waiting this many seconds.
    RetryAfter(f64),
    /// Stop retrying: the packet enters the `abandoned` terminal state.
    Abandon,
}

/// Exponential backoff with jitter, bounded attempts, and deadline-aware
/// give-up.
///
/// The undelayed backoff before attempt `n + 1` (after `n` failures) is
/// `min(base_backoff_s * backoff_factor^(n-1), max_backoff_s)`; jitter
/// scales it by `1 + jitter_frac * (u - 0.5)` for a uniform `u` in
/// `[0, 1)` supplied by the caller (the simulator derives `u` from the
/// fault plan's seed so runs stay deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Backoff before the second attempt, in seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied per further failed attempt (≥ 1).
    pub backoff_factor: f64,
    /// Upper bound on any single backoff delay, in seconds.
    pub max_backoff_s: f64,
    /// Fraction of the delay randomized by jitter, in `[0, 1]`.
    pub jitter_frac: f64,
    /// Failed attempts after which the packet is abandoned.
    pub max_attempts: u32,
    /// A packet older than this (since original arrival) at its *next*
    /// attempt is abandoned rather than retried.
    pub give_up_age_s: f64,
}

impl Default for RetryPolicy {
    /// 2 s base doubling to a 60 s cap, ±5% jitter, six attempts, ten
    /// minutes of patience.
    fn default() -> Self {
        RetryPolicy {
            base_backoff_s: 2.0,
            backoff_factor: 2.0,
            max_backoff_s: 60.0,
            jitter_frac: 0.1,
            max_attempts: 6,
            give_up_age_s: 600.0,
        }
    }
}

impl RetryPolicy {
    /// The default policy with `give_up_age_s` tied to an application
    /// deadline: give up once retrying can no longer beat `3 × deadline_s`
    /// of total age (by then the delay cost dwarfs any energy saving).
    pub fn for_deadline(deadline_s: f64) -> Self {
        RetryPolicy {
            give_up_age_s: 3.0 * deadline_s,
            ..RetryPolicy::default()
        }
    }

    /// Checks the policy's invariants, returning a description of the
    /// first violation.
    ///
    /// # Errors
    ///
    /// Returns `Err` when any field is non-finite or out of range.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.base_backoff_s.is_finite() && self.base_backoff_s > 0.0) {
            return Err(format!(
                "base_backoff_s must be positive and finite, got {}",
                self.base_backoff_s
            ));
        }
        if !(self.backoff_factor.is_finite() && self.backoff_factor >= 1.0) {
            return Err(format!(
                "backoff_factor must be >= 1, got {}",
                self.backoff_factor
            ));
        }
        if !(self.max_backoff_s.is_finite() && self.max_backoff_s >= self.base_backoff_s) {
            return Err(format!(
                "max_backoff_s must be >= base_backoff_s, got {}",
                self.max_backoff_s
            ));
        }
        if !(self.jitter_frac.is_finite() && (0.0..=1.0).contains(&self.jitter_frac)) {
            return Err(format!(
                "jitter_frac must be in [0, 1], got {}",
                self.jitter_frac
            ));
        }
        if self.max_attempts == 0 {
            return Err("max_attempts must be at least 1".to_string());
        }
        if !(self.give_up_age_s.is_finite() && self.give_up_age_s > 0.0) {
            return Err(format!(
                "give_up_age_s must be positive and finite, got {}",
                self.give_up_age_s
            ));
        }
        Ok(())
    }

    /// The undelayed (jitter-free) backoff after `failed_attempts` ≥ 1
    /// failures: `min(base * factor^(n-1), max)`. Monotone non-decreasing
    /// in `failed_attempts` and bounded by `max_backoff_s`.
    pub fn backoff_s(&self, failed_attempts: u32) -> f64 {
        debug_assert!(failed_attempts >= 1);
        // Clamp the exponent before the i32 cast: attempt counts past
        // 2^31 would wrap negative and collapse the delay to ~0. The
        // clamped power overflows to +inf at worst, which min() absorbs.
        let exp = failed_attempts.saturating_sub(1).min(i32::MAX as u32) as i32;
        (self.base_backoff_s * self.backoff_factor.powi(exp)).min(self.max_backoff_s)
    }

    /// The jittered backoff: `backoff_s(n) * (1 + jitter_frac * (u - 0.5))`
    /// for `jitter_unit` = `u` uniform in `[0, 1)`.
    pub fn jittered_backoff_s(&self, failed_attempts: u32, jitter_unit: f64) -> f64 {
        debug_assert!((0.0..1.0).contains(&jitter_unit) || self.jitter_frac == 0.0);
        self.backoff_s(failed_attempts) * (1.0 + self.jitter_frac * (jitter_unit - 0.5))
    }

    /// Decides the fate of a packet that just failed its
    /// `failed_attempts`-th attempt at `now_s`, having originally arrived
    /// at `arrival_s`. Abandons when attempts are exhausted or when the
    /// packet's age at its next attempt would exceed `give_up_age_s`
    /// (deadline-aware give-up); otherwise schedules a jittered retry.
    pub fn decide(
        &self,
        failed_attempts: u32,
        now_s: f64,
        arrival_s: f64,
        jitter_unit: f64,
    ) -> RetryDecision {
        if failed_attempts >= self.max_attempts {
            return RetryDecision::Abandon;
        }
        let delay = self.jittered_backoff_s(failed_attempts, jitter_unit);
        if now_s + delay - arrival_s > self.give_up_age_s {
            return RetryDecision::Abandon;
        }
        RetryDecision::RetryAfter(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        RetryPolicy::default().validate().unwrap();
        RetryPolicy::for_deadline(120.0).validate().unwrap();
        assert_eq!(RetryPolicy::for_deadline(120.0).give_up_age_s, 360.0);
    }

    #[test]
    fn backoff_is_monotone_and_capped() {
        let policy = RetryPolicy::default();
        let mut prev = 0.0;
        for n in 1..20 {
            let d = policy.backoff_s(n);
            assert!(d >= prev, "monotone at attempt {n}");
            assert!(d <= policy.max_backoff_s);
            prev = d;
        }
        assert_eq!(policy.backoff_s(1), 2.0);
        assert_eq!(policy.backoff_s(2), 4.0);
        assert_eq!(policy.backoff_s(10), 60.0);
    }

    #[test]
    fn jitter_stays_within_band() {
        let policy = RetryPolicy::default();
        for i in 0..100 {
            let u = i as f64 / 100.0;
            let d = policy.jittered_backoff_s(3, u);
            let base = policy.backoff_s(3);
            assert!(
                d >= base * 0.95 && d <= base * 1.05,
                "got {d} for base {base}"
            );
        }
        let no_jitter = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(no_jitter.jittered_backoff_s(3, 0.9), no_jitter.backoff_s(3));
    }

    #[test]
    fn decide_abandons_on_exhausted_attempts() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.decide(6, 10.0, 0.0, 0.5), RetryDecision::Abandon);
        assert!(matches!(
            policy.decide(1, 10.0, 0.0, 0.5),
            RetryDecision::RetryAfter(_)
        ));
    }

    #[test]
    fn decide_abandons_past_give_up_age() {
        let policy = RetryPolicy {
            give_up_age_s: 100.0,
            ..RetryPolicy::default()
        };
        // Age at next attempt would be 99 + 2 = 101 > 100.
        assert_eq!(policy.decide(1, 99.0, 0.0, 0.5), RetryDecision::Abandon);
        // Age 50 + 2 = 52: fine.
        assert!(matches!(
            policy.decide(1, 50.0, 0.0, 0.5),
            RetryDecision::RetryAfter(_)
        ));
    }

    #[test]
    fn validate_rejects_bad_fields() {
        let bad = |f: fn(&mut RetryPolicy)| {
            let mut p = RetryPolicy::default();
            f(&mut p);
            p.validate().unwrap_err()
        };
        assert!(bad(|p| p.base_backoff_s = 0.0).contains("base_backoff_s"));
        assert!(bad(|p| p.backoff_factor = 0.5).contains("backoff_factor"));
        assert!(bad(|p| p.max_backoff_s = 0.1).contains("max_backoff_s"));
        assert!(bad(|p| p.jitter_frac = 2.0).contains("jitter_frac"));
        assert!(bad(|p| p.max_attempts = 0).contains("max_attempts"));
        assert!(bad(|p| p.give_up_age_s = f64::NAN).contains("give_up_age_s"));
    }

    #[test]
    fn serde_round_trip() {
        let policy = RetryPolicy::for_deadline(90.0);
        let json = serde_json::to_string(&policy).unwrap();
        let back: RetryPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(policy, back);
    }
}
