//! Fleet determinism tiers.
//!
//! Quick tier (always on): serial-vs-sharded bit identity, fleet ≡ N
//! independent single-device runs, and byte-identical journaled reruns.
//! Heavy tier (`--ignored`, run by the CI conformance job): the same
//! serial-vs-sharded identity at 100k devices — the scale the throughput
//! experiment ships.

use etrain_fleet::{run_fleet, run_fleet_journaled, run_fleet_reports, ClassMix, FleetConfig};

/// Column-by-column bit equality (f64 columns compared through bits so a
/// NaN disagreement cannot silently pass, as it would under `==`).
fn assert_columns_bit_identical(a: &etrain_fleet::FleetColumns, b: &etrain_fleet::FleetColumns) {
    assert_eq!(a.len(), b.len(), "row counts differ");
    assert_eq!(a.class, b.class);
    assert_eq!(a.packets_completed, b.packets_completed);
    assert_eq!(a.packets_unfinished, b.packets_unfinished);
    assert_eq!(a.heartbeats_sent, b.heartbeats_sent);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&a.extra_energy_j), bits(&b.extra_energy_j));
    assert_eq!(bits(&a.total_energy_j), bits(&b.total_energy_j));
    assert_eq!(bits(&a.normalized_delay_s), bits(&b.normalized_delay_s));
}

#[test]
fn serial_and_sharded_fleets_are_bit_identical() {
    let devices = 100;
    let serial = run_fleet(
        &FleetConfig::paper_default(devices)
            .seed(11)
            .shard_devices(devices as usize)
            .jobs(1),
    );
    let sharded = run_fleet(
        &FleetConfig::paper_default(devices)
            .seed(11)
            .shard_devices(7)
            .jobs(4),
    );
    assert_eq!(serial.shards, 1);
    assert_eq!(sharded.shards, 15);
    assert_columns_bit_identical(&serial.columns, &sharded.columns);
    assert_eq!(
        serial.fleet.extra_energy_j.to_bits(),
        sharded.fleet.extra_energy_j.to_bits(),
        "canonical tally must be partition-independent"
    );
    assert_eq!(serial.fleet, sharded.fleet);
}

#[test]
fn fleet_of_n_equals_n_independent_single_device_runs() {
    let config = FleetConfig::paper_default(60)
        .seed(3)
        .shard_devices(13)
        .jobs(3);
    let fleet = run_fleet(&config);
    let independent = run_fleet_reports(&config);
    assert_eq!(fleet.columns.len(), independent.len());
    for (i, report) in independent.iter().enumerate() {
        assert_eq!(
            fleet.columns.extra_energy_j[i].to_bits(),
            report.extra_energy_j.to_bits(),
            "device {i}: fleet fast path diverged from its reference scenario"
        );
        assert_eq!(
            fleet.columns.total_energy_j[i].to_bits(),
            report.total_energy_j.to_bits()
        );
        assert_eq!(
            fleet.columns.normalized_delay_s[i].to_bits(),
            report.normalized_delay_s.to_bits()
        );
        assert_eq!(
            fleet.columns.packets_completed[i] as usize,
            report.packets_completed
        );
        assert_eq!(
            fleet.columns.packets_unfinished[i] as usize,
            report.packets_unfinished
        );
        assert_eq!(
            fleet.columns.heartbeats_sent[i] as usize,
            report.heartbeats_sent
        );
    }
}

#[test]
fn fleet_is_reproducible_across_invocations_and_mixes_matter() {
    let a = run_fleet(&FleetConfig::paper_default(40).seed(5));
    let b = run_fleet(&FleetConfig::paper_default(40).seed(5));
    assert_columns_bit_identical(&a.columns, &b.columns);
    let uniform = run_fleet(
        &FleetConfig::paper_default(40)
            .seed(5)
            .mix(ClassMix::uniform()),
    );
    // A uniform mix has far more active users than the paper skew, so it
    // must upload more and burn more extra energy in aggregate.
    assert!(uniform.fleet.extra_energy_j > a.fleet.extra_energy_j);
}

#[test]
fn journaled_fleet_reruns_are_byte_identical() {
    let config = FleetConfig::paper_default(8).seed(2);
    let (reports_a, journal_a) = run_fleet_journaled(&config);
    let (reports_b, journal_b) = run_fleet_journaled(&config);
    assert_eq!(reports_a, reports_b);
    let jsonl_a = journal_a.to_jsonl();
    assert!(!jsonl_a.is_empty(), "journaled fleet must record events");
    assert_eq!(jsonl_a, journal_b.to_jsonl());
    // Journaled reports agree with the unjournaled fast path (obs is
    // zero-cost when on vs off by the obs crate's contract).
    let fleet = run_fleet(&config.clone().jobs(1));
    for (i, report) in reports_a.iter().enumerate() {
        assert_eq!(
            fleet.columns.extra_energy_j[i].to_bits(),
            report.extra_energy_j.to_bits()
        );
    }
}

#[test]
fn snapshot_shape_is_fixed_and_consistent() {
    let result = run_fleet(&FleetConfig::paper_default(50).seed(9));
    let snapshot = result.snapshot();
    assert_eq!(snapshot.devices, 50);
    assert_eq!(snapshot.classes.len(), 3);
    let class_devices: u64 = snapshot.classes.iter().map(|c| c.tally.devices).sum();
    assert_eq!(class_devices, snapshot.devices);
    for class in &snapshot.classes {
        if class.tally.devices > 0 {
            assert!(class.p50_extra_j <= class.p95_extra_j);
            assert!(class.p95_extra_j <= class.p99_extra_j);
            assert!(class.tally.min_extra_j <= class.p50_extra_j);
            assert!(class.p99_extra_j <= class.tally.max_extra_j);
        }
    }
}

/// The throughput experiment's quick-tier scale, serial vs sharded —
/// heavy, so it rides the CI conformance job's `--ignored` pass.
#[test]
#[ignore = "heavy: 2x 100k-device fleets; run via --ignored (CI conformance job)"]
fn serial_and_sharded_fleets_agree_at_one_hundred_thousand_devices() {
    let devices = 100_000;
    let sharded = run_fleet(&FleetConfig::paper_default(devices).seed(1));
    assert_eq!(sharded.fleet.devices, devices);
    let serial = run_fleet(
        &FleetConfig::paper_default(devices)
            .seed(1)
            .shard_devices(devices as usize)
            .jobs(1),
    );
    assert_columns_bit_identical(&serial.columns, &sharded.columns);
    assert_eq!(serial.fleet, sharded.fleet);
}
