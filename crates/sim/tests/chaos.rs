//! Seeded chaos scenario: the degradation ladder under compound faults.
//!
//! One deterministic run drives the guarded scheduler through the whole
//! ladder — an injected oracle alarm demotes it, a train-death window
//! drops it to Fallback, and the post-fault heartbeat stream earns the
//! promotions back — while the strict simulation oracle audits every
//! invariant. The run must also honour the paper's safety claim in its
//! weakest state: total energy stays at or below the no-piggyback
//! baseline on the same traces.
//!
//! When `ETRAIN_CHAOS_LOG` is set, the transition log is written there as
//! JSON (the CI chaos job uploads it as an artifact).

use etrain_sim::oracle::OracleMode;
use etrain_sim::{
    AdmissionConfig, FaultPlan, HealthConfig, HealthState, RunGrid, RunReport, Scenario,
    SchedulerKind, TransitionCause,
};

/// The chaos scenario: paper workload, long horizon, and a fault plan
/// layering loss, an injected oracle alarm and a train-death window.
fn chaos_scenario() -> Scenario {
    Scenario::paper_default()
        .oracle(OracleMode::Strict)
        .duration_secs(7_200)
        .seed(42)
        .faults(
            FaultPlan::seeded(42)
                .with_loss(0.05)
                .with_oracle_alarm(150.0)
                .with_train_death(1_800.0, 2_400.0),
        )
}

fn guarded_kind() -> SchedulerKind {
    SchedulerKind::Guarded {
        theta: 0.2,
        k: None,
        health: HealthConfig::default(),
        admission: AdmissionConfig::unbounded(),
    }
}

fn run_chaos() -> (RunReport, RunReport) {
    let reports = RunGrid::over_schedulers(
        &chaos_scenario(),
        &[SchedulerKind::Baseline, guarded_kind()],
    )
    .try_run()
    .expect("chaos run passes the strict oracle");
    let mut it = reports.into_iter();
    let baseline = it.next().expect("baseline report");
    let guarded = it.next().expect("guarded report");
    (baseline, guarded)
}

#[test]
fn ladder_walks_down_to_fallback_and_back_under_chaos() {
    let (baseline, guarded) = run_chaos();
    let events = &guarded.health_events;
    assert!(!events.is_empty(), "chaos run must exercise the ladder");

    // Timestamps are ordered and inside the horizon, and consecutive
    // transitions chain (each leaves the state the previous one entered).
    assert!(
        events.windows(2).all(|w| w[0].at_s <= w[1].at_s),
        "transitions out of order: {events:?}"
    );
    assert!(events.iter().all(|t| (0.0..=7_200.0).contains(&t.at_s)));
    assert!(
        events.windows(2).all(|w| w[0].to == w[1].from),
        "transition chain broken: {events:?}"
    );

    // The injected alarm demotes (Healthy -> Degraded) at the first slot
    // boundary at or after t = 150 s.
    let alarm = events
        .iter()
        .find(|t| t.cause == TransitionCause::OracleViolation)
        .expect("injected oracle alarm recorded");
    assert!(alarm.at_s >= 150.0, "alarm delivered at {}", alarm.at_s);

    // Sustained loss trips the consecutive-tx-failure demotion at least
    // once over the horizon.
    assert!(
        events
            .iter()
            .any(|t| matches!(t.cause, TransitionCause::RepeatedTxFailures { .. })),
        "loss never tripped the failure threshold: {events:?}"
    );

    // The train-death window drops the ladder to Fallback...
    let death = events
        .iter()
        .find(|t| t.cause == TransitionCause::TrainDeath && (1_800.0..=2_400.0).contains(&t.at_s))
        .expect("train-death window recorded");
    assert_eq!(death.to, HealthState::Fallback);

    // ... and clean heartbeats after the window earn promotions back.
    let recovery = events
        .iter()
        .find(|t| matches!(t.cause, TransitionCause::Recovered { .. }) && t.at_s > death.at_s)
        .expect("ladder recovers after the death window");
    assert!(recovery.at_s > 2_400.0, "recovery only once trains restart");
    assert!(
        events
            .iter()
            .any(|t| matches!(t.cause, TransitionCause::Recovered { .. })
                && t.to == HealthState::Healthy),
        "ladder climbs all the way back to Healthy: {events:?}"
    );

    // Safety claim, chaos edition: even spending part of the run in
    // Fallback (= baseline semantics), guarded eTrain never consumes more
    // than the no-piggyback baseline on the same traces and faults.
    assert!(
        guarded.total_energy_j <= baseline.total_energy_j + 1e-6,
        "guarded {} J > baseline {} J",
        guarded.total_energy_j,
        baseline.total_energy_j
    );
    assert!(guarded.oracle.as_ref().is_some_and(|o| o.is_clean()));
    assert!(baseline.oracle.as_ref().is_some_and(|o| o.is_clean()));

    // CI artifact: the degradation event log as JSON.
    if let Ok(path) = std::env::var("ETRAIN_CHAOS_LOG") {
        let json = serde_json::to_string_pretty(events).expect("events serialize");
        std::fs::write(&path, json).expect("chaos log path is writable");
    }
}

#[test]
fn chaos_run_is_deterministic_across_worker_counts() {
    let serial = RunGrid::over_schedulers(
        &chaos_scenario(),
        &[SchedulerKind::Baseline, guarded_kind()],
    )
    .jobs(1)
    .run();
    let parallel = RunGrid::over_schedulers(
        &chaos_scenario(),
        &[SchedulerKind::Baseline, guarded_kind()],
    )
    .jobs(2)
    .run();
    assert_eq!(serial, parallel);
}

#[test]
fn fault_free_guarded_run_stays_healthy_until_the_trace_ends() {
    let report = Scenario::paper_default()
        .oracle(OracleMode::Strict)
        .duration_secs(3_600)
        .seed(42)
        .scheduler(guarded_kind())
        .try_run()
        .expect("fault-free guarded run is clean");
    // The only permitted transition is the end-of-trace watchdog flush:
    // after the final heartbeat there will never be another train, so the
    // engine reports `trains_alive = false` and the ladder (correctly)
    // stops deferring. No failures, no alarms, nothing shed.
    assert!(
        report.health_events.len() <= 1,
        "fault-free run transitioned mid-trace: {:?}",
        report.health_events
    );
    if let Some(event) = report.health_events.first() {
        assert_eq!(event.cause, TransitionCause::TrainDeath);
        assert_eq!(event.to, HealthState::Fallback);
        assert!(event.at_s > 3_000.0, "flush only at end of trace");
    }
    assert_eq!(report.packets_shed, 0);
    assert_eq!(report.forced_flushes, 0);
}
