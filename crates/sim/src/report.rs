//! Plain-text table formatting for experiment outputs.
//!
//! Every reproduction binary prints the rows/series of its paper figure as
//! an aligned text table plus an optional CSV dump, so results can be
//! eyeballed and machine-read.

use std::fmt;

/// An aligned text table.
///
/// # Examples
///
/// ```
/// use etrain_sim::Table;
///
/// let mut t = Table::new("Fig. X", &["theta", "energy_j"]);
/// t.push_row(&["0.2", "812.5"]);
/// let text = t.to_string();
/// assert!(text.contains("Fig. X"));
/// assert!(text.contains("812.5"));
/// assert_eq!(t.to_csv(), "theta,energy_j\n0.2,812.5\n");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows are
    /// truncated to the header width.
    pub fn push_row(&mut self, cells: &[&str]) {
        let mut row: Vec<String> = cells
            .iter()
            .take(self.headers.len())
            .map(|s| (*s).to_owned())
            .collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Appends a row of pre-formatted strings.
    pub fn push_row_strings(&mut self, cells: Vec<String>) {
        let mut row = cells;
        row.truncate(self.headers.len());
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers, in display order.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The cell at data row `row` in the column named `column`.
    ///
    /// Negative `row` values index from the end (`-1` is the last row).
    /// Returns `None` if the row is out of range or no column has that
    /// header.
    pub fn cell(&self, row: isize, column: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == column)?;
        let index = if row < 0 {
            self.rows.len().checked_sub(row.unsigned_abs())?
        } else {
            usize::try_from(row).ok()?
        };
        self.rows.get(index)?.get(col).map(String::as_str)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (headers first, no title).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, cell)| format!("{:>width$}", cell, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a float with the given number of decimal places (helper for
/// experiment binaries).
pub fn fmt_f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_padding() {
        let mut t = Table::new("T", &["a", "long_header"]);
        t.push_row(&["1"]);
        t.push_row(&["22", "3", "extra-ignored"]);
        let text = t.to_string();
        assert!(text.contains("== T =="));
        assert!(!text.contains("extra-ignored"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("T", &["x", "y"]);
        t.push_row_strings(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn cell_lookup_by_header_and_signed_row() {
        let mut t = Table::new("T", &["theta", "energy_j"]);
        t.push_row(&["0.5", "812.5"]);
        t.push_row(&["2.0", "640.0"]);
        assert_eq!(t.cell(0, "theta"), Some("0.5"));
        assert_eq!(t.cell(-1, "energy_j"), Some("640.0"));
        assert_eq!(t.cell(-2, "energy_j"), Some("812.5"));
        assert_eq!(t.cell(2, "theta"), None);
        assert_eq!(t.cell(-3, "theta"), None);
        assert_eq!(t.cell(0, "missing"), None);
    }

    #[test]
    fn empty_table() {
        let t = Table::new("E", &["only"]);
        assert!(t.is_empty());
        assert!(t.to_string().contains("only"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(1.61803, 2), "1.62");
        assert_eq!(fmt_f(1000.0, 0), "1000");
    }
}
