//! Reproduction binary for experiment `ext_push_poll` — see DESIGN.md for
//! the artifact it generates. Pass `--quick` for a fast smoke run.

fn main() {
    etrain_bench::run_binary("ext_push_poll");
}
