//! Hot-path speedup: the cached steady-state decision and pooled
//! timeline paths vs the retained from-scratch reference recompute. See
//! `experiments::hotpath_speedup`.

fn main() {
    etrain_bench::run_binary("hotpath_speedup");
}
