//! Cellular uplink bandwidth traces.
//!
//! The paper drives its simulations with a real 2-hour 3G uplink trace
//! collected on December 8th 2014 while riding a bus through downtown Wuhan
//! and then walking around a university campus, sampled at 1 Hz (Sec. VI-A).
//! That trace is not published, so [`wuhan_drive_synthetic`] generates a
//! statistically comparable replacement: a log-space AR(1) process with two
//! regimes — a bus/downtown regime (lower mean, higher variance, deep fades)
//! followed by a campus-walk regime (higher mean, lower variance).

use serde::{Deserialize, Serialize};

use crate::rng::{seeded, standard_normal};

/// A uniformly sampled uplink bandwidth trace (bits per second).
///
/// Sample `i` is the average bandwidth over `[i·dt, (i+1)·dt)`. Queries
/// beyond the end of the trace return the last sample, so a simulation may
/// run slightly past the trace without panicking.
///
/// # Examples
///
/// ```
/// use etrain_trace::bandwidth::BandwidthTrace;
///
/// let trace = BandwidthTrace::new(1.0, vec![8_000.0, 16_000.0]);
/// assert_eq!(trace.bandwidth_at(0.5), 8_000.0);
/// assert_eq!(trace.bandwidth_at(99.0), 16_000.0);
/// // 1000 bytes at 8 kbps = 1 s, so a transfer starting at 0 finishes at 1.
/// assert!((trace.transfer_time_s(0.0, 1_000) - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthTrace {
    dt_s: f64,
    samples_bps: Vec<f64>,
}

impl BandwidthTrace {
    /// Creates a trace with sampling interval `dt_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not strictly positive, if `samples_bps` is empty,
    /// or if any sample is non-positive or non-finite (a zero-bandwidth
    /// sample would make transfer times infinite; model outages as very low
    /// bandwidth instead).
    pub fn new(dt_s: f64, samples_bps: Vec<f64>) -> Self {
        assert!(dt_s > 0.0, "sampling interval must be positive");
        assert!(!samples_bps.is_empty(), "bandwidth trace must not be empty");
        assert!(
            samples_bps.iter().all(|&b| b.is_finite() && b > 0.0),
            "bandwidth samples must be positive and finite"
        );
        BandwidthTrace { dt_s, samples_bps }
    }

    /// Creates a constant-bandwidth trace of one sample (useful in tests
    /// and analytic comparisons).
    pub fn constant(bps: f64) -> Self {
        BandwidthTrace::new(1.0, vec![bps])
    }

    /// Sampling interval in seconds.
    pub fn dt_s(&self) -> f64 {
        self.dt_s
    }

    /// The raw samples in bits per second.
    pub fn samples_bps(&self) -> &[f64] {
        &self.samples_bps
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_bps.len()
    }

    /// Whether the trace is empty (never true — construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.samples_bps.is_empty()
    }

    /// Duration covered by the trace in seconds.
    pub fn duration_s(&self) -> f64 {
        self.dt_s * self.samples_bps.len() as f64
    }

    /// Bandwidth at time `t_s` (last sample beyond the end, first sample for
    /// negative times).
    pub fn bandwidth_at(&self, t_s: f64) -> f64 {
        let idx = if t_s <= 0.0 {
            0
        } else {
            ((t_s / self.dt_s) as usize).min(self.samples_bps.len() - 1)
        };
        self.samples_bps[idx]
    }

    /// Mean bandwidth in bits per second.
    pub fn mean_bps(&self) -> f64 {
        self.samples_bps.iter().sum::<f64>() / self.samples_bps.len() as f64
    }

    /// Minimum sample in bits per second.
    pub fn min_bps(&self) -> f64 {
        self.samples_bps
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample in bits per second.
    pub fn max_bps(&self) -> f64 {
        self.samples_bps.iter().copied().fold(0.0, f64::max)
    }

    /// Time needed to push `size_bytes` bytes starting at `start_s`,
    /// integrating the piecewise-constant bandwidth, in seconds.
    ///
    /// Beyond the end of the trace the last sample's bandwidth applies
    /// indefinitely.
    pub fn transfer_time_s(&self, start_s: f64, size_bytes: u64) -> f64 {
        self.transfer_time_for_bits(start_s, size_bytes as f64 * 8.0)
    }

    /// Time needed to push `bits` bits starting at `start_s` — the
    /// fractional-precision core of [`BandwidthTrace::transfer_time_s`],
    /// used by the fault layer to resume transfers interrupted by outages.
    pub fn transfer_time_for_bits(&self, start_s: f64, bits: f64) -> f64 {
        let mut remaining_bits = bits;
        if remaining_bits <= 0.0 {
            return 0.0;
        }
        let mut t = start_s.max(0.0);
        loop {
            let idx = (t / self.dt_s) as usize;
            if idx >= self.samples_bps.len() - 1 {
                // Constant extrapolation past the trace end.
                let bps = self.samples_bps[self.samples_bps.len() - 1];
                return t - start_s.max(0.0) + remaining_bits / bps;
            }
            let sample_end = (idx as f64 + 1.0) * self.dt_s;
            let bps = self.samples_bps[idx];
            let capacity = bps * (sample_end - t);
            if remaining_bits <= capacity {
                return t - start_s.max(0.0) + remaining_bits / bps;
            }
            remaining_bits -= capacity;
            t = sample_end;
        }
    }

    /// Bits that flow through the channel over `[start_s, end_s)` —
    /// the inverse of [`BandwidthTrace::transfer_time_for_bits`]. Negative
    /// times clamp to zero; an empty or inverted interval carries no bits.
    pub fn bits_transferred(&self, start_s: f64, end_s: f64) -> f64 {
        let mut t = start_s.max(0.0);
        if end_s <= t {
            return 0.0;
        }
        let mut bits = 0.0;
        loop {
            let idx = (t / self.dt_s) as usize;
            if idx >= self.samples_bps.len() - 1 {
                let bps = self.samples_bps[self.samples_bps.len() - 1];
                return bits + bps * (end_s - t);
            }
            let sample_end = (idx as f64 + 1.0) * self.dt_s;
            let bps = self.samples_bps[idx];
            if end_s <= sample_end {
                return bits + bps * (end_s - t);
            }
            bits += bps * (sample_end - t);
            t = sample_end;
        }
    }
}

/// One regime of the synthetic bandwidth generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegimeSpec {
    /// Regime length in seconds.
    pub duration_s: f64,
    /// Median bandwidth (the AR process mean in log space maps to the
    /// median in linear space) in bits per second.
    pub median_bps: f64,
    /// Standard deviation of the stationary log-bandwidth process.
    pub sigma_log: f64,
    /// AR(1) coefficient in `[0, 1)`; higher values give slower fading.
    pub ar_coeff: f64,
}

/// Generates a bandwidth trace from a sequence of AR(1) log-normal regimes
/// at 1 Hz.
///
/// # Panics
///
/// Panics if `regimes` is empty or contains invalid parameters
/// (non-positive duration/median, `ar_coeff` outside `[0, 1)`).
pub fn generate_regimes(regimes: &[RegimeSpec], seed: u64) -> BandwidthTrace {
    assert!(!regimes.is_empty(), "at least one regime is required");
    let mut rng = seeded(seed);
    let mut samples = Vec::new();
    // Start the AR state at the first regime's median.
    let mut x = regimes[0].median_bps.ln();
    for regime in regimes {
        assert!(regime.duration_s > 0.0, "regime duration must be positive");
        assert!(regime.median_bps > 0.0, "regime median must be positive");
        assert!(
            (0.0..1.0).contains(&regime.ar_coeff),
            "AR coefficient must lie in [0, 1)"
        );
        let mu = regime.median_bps.ln();
        // Innovation variance that yields the requested stationary sigma.
        let innovation = regime.sigma_log * (1.0 - regime.ar_coeff * regime.ar_coeff).sqrt();
        let n = regime.duration_s.round() as usize;
        for _ in 0..n {
            x = mu + regime.ar_coeff * (x - mu) + innovation * standard_normal(&mut rng);
            // Floor at 8 kbps: even deep fades keep the link barely alive.
            samples.push(x.exp().max(8_000.0));
        }
    }
    BandwidthTrace::new(1.0, samples)
}

/// The reproduction's stand-in for the paper's 2-hour Wuhan drive trace:
/// one hour of bus/downtown conditions followed by one hour of campus-walk
/// conditions, 7200 one-second uplink samples.
///
/// # Examples
///
/// ```
/// use etrain_trace::bandwidth::wuhan_drive_synthetic;
///
/// let trace = wuhan_drive_synthetic(42);
/// assert_eq!(trace.len(), 7200);
/// assert!(trace.mean_bps() > 100_000.0);
/// ```
pub fn wuhan_drive_synthetic(seed: u64) -> BandwidthTrace {
    generate_regimes(
        &[
            RegimeSpec {
                duration_s: 3600.0,
                median_bps: 450_000.0,
                sigma_log: 0.65,
                ar_coeff: 0.97,
            },
            RegimeSpec {
                duration_s: 3600.0,
                median_bps: 1_100_000.0,
                sigma_log: 0.30,
                ar_coeff: 0.93,
            },
        ],
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_lookup_clamps_both_ends() {
        let t = BandwidthTrace::new(2.0, vec![10.0, 20.0, 30.0]);
        assert_eq!(t.bandwidth_at(-5.0), 10.0);
        assert_eq!(t.bandwidth_at(3.0), 20.0);
        assert_eq!(t.bandwidth_at(100.0), 30.0);
        assert_eq!(t.duration_s(), 6.0);
    }

    #[test]
    fn transfer_time_spans_samples() {
        // 1 s at 8 kbps moves 1000 B; next sample is twice as fast.
        let t = BandwidthTrace::new(1.0, vec![8_000.0, 16_000.0]);
        // 2000 bytes: 1000 in the first second, 1000 in the next 0.5 s.
        assert!((t.transfer_time_s(0.0, 2_000) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_extrapolates_past_end() {
        let t = BandwidthTrace::new(1.0, vec![8_000.0]);
        // 10 kB at 1 kB/s = 10 s, even though the trace is 1 s long.
        assert!((t.transfer_time_s(0.0, 10_000) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_zero_bytes_is_zero() {
        let t = BandwidthTrace::constant(100_000.0);
        assert_eq!(t.transfer_time_s(5.0, 0), 0.0);
    }

    #[test]
    fn transfer_time_mid_sample_start() {
        let t = BandwidthTrace::new(1.0, vec![8_000.0, 80_000.0]);
        // Start at 0.5: 0.5 s * 1000 B/s = 500 B, then 500 B at 10 kB/s.
        assert!((t.transfer_time_s(0.5, 1_000) - 0.55).abs() < 1e-9);
    }

    #[test]
    fn synthetic_trace_has_expected_shape() {
        let trace = wuhan_drive_synthetic(1);
        assert_eq!(trace.len(), 7200);
        let first_half: f64 = trace.samples_bps()[..3600].iter().sum::<f64>() / 3600.0;
        let second_half: f64 = trace.samples_bps()[3600..].iter().sum::<f64>() / 3600.0;
        assert!(
            second_half > first_half,
            "campus regime ({second_half}) should outpace bus regime ({first_half})"
        );
        assert!(trace.min_bps() >= 8_000.0);
    }

    #[test]
    fn synthetic_trace_is_deterministic_per_seed() {
        assert_eq!(wuhan_drive_synthetic(5), wuhan_drive_synthetic(5));
        assert_ne!(wuhan_drive_synthetic(5), wuhan_drive_synthetic(6));
    }

    #[test]
    fn bus_regime_is_more_variable() {
        let trace = wuhan_drive_synthetic(3);
        let cv = |s: &[f64]| {
            let mean = s.iter().sum::<f64>() / s.len() as f64;
            let var = s.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / s.len() as f64;
            var.sqrt() / mean
        };
        let bus = cv(&trace.samples_bps()[..3600]);
        let campus = cv(&trace.samples_bps()[3600..]);
        assert!(
            bus > campus,
            "bus CV {bus} should exceed campus CV {campus}"
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth trace must not be empty")]
    fn empty_trace_rejected() {
        let _ = BandwidthTrace::new(1.0, vec![]);
    }

    #[test]
    #[should_panic(expected = "bandwidth samples must be positive")]
    fn zero_sample_rejected() {
        let _ = BandwidthTrace::new(1.0, vec![1_000.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "AR coefficient")]
    fn bad_ar_coefficient_rejected() {
        let _ = generate_regimes(
            &[RegimeSpec {
                duration_s: 10.0,
                median_bps: 1_000.0,
                sigma_log: 0.1,
                ar_coeff: 1.5,
            }],
            1,
        );
    }
}
