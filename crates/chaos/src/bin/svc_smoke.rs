//! `svc_smoke` — the durable daemon's kill/restart smoke loop.
//!
//! Spawns the real `etrain-svcd` (which must be built first:
//! `cargo build -p etrain-svc`), SIGKILLs it at seeded points, arms
//! mid-append WAL faults, restarts after every crash, and verifies the
//! recovered state matches a never-killed reference bit-for-bit. Also
//! runs the WAL corruption self-test. Writes the combined report as
//! JSON and exits nonzero on any divergence — CI's `svc-smoke` job
//! uploads the report as an artifact.
//!
//! ```text
//! svc_smoke [--kills N] [--seed S] [--out PATH]
//! ```

use std::path::PathBuf;

use etrain_chaos::{
    daemon_binary, run_supervisor, run_wal_selftest, SupervisorReport, WalSelfTest,
};
use serde::Serialize;

/// The artifact CI uploads: the supervisor campaign plus the WAL
/// corruption self-test, in one JSON document.
#[derive(Serialize)]
struct SmokeReport {
    supervisor: SupervisorReport,
    wal_selftest: Vec<WalSelfTest>,
}

fn main() {
    let mut kills = 7usize;
    let mut seed = 17u64;
    let mut out = PathBuf::from("svc-recovery-report.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("svc_smoke: {what} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--kills" => {
                kills = value("--kills").parse().unwrap_or_else(|_| {
                    eprintln!("svc_smoke: --kills must be a positive integer");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                seed = value("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("svc_smoke: --seed must be a non-negative integer");
                    std::process::exit(2);
                })
            }
            "--out" => out = PathBuf::from(value("--out")),
            other => {
                eprintln!("svc_smoke: unknown argument {other:?}");
                eprintln!("usage: svc_smoke [--kills N] [--seed S] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let Some(bin) = daemon_binary() else {
        eprintln!(
            "svc_smoke: etrain-svcd not found — build it first \
             (cargo build -p etrain-svc) or set ETRAIN_SVCD_BIN"
        );
        std::process::exit(2);
    };

    let scratch = std::env::temp_dir().join(format!("etrain-svc-smoke-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&scratch);
    println!(
        "svc_smoke: daemon {} seed {seed} kills {kills}",
        bin.display()
    );
    let supervisor = run_supervisor(&bin, &scratch, seed, kills);
    let selftest = run_wal_selftest(seed, 60, &scratch);
    let _ = std::fs::remove_dir_all(&scratch);

    for trial in &supervisor.trials {
        println!(
            "  {:<16} acked={:<4} identical={} recovery={:.2}ms  {}",
            trial.kind, trial.acked_steps, trial.identical, trial.recovery_ms, trial.recovered_line
        );
    }
    for error in &supervisor.errors {
        println!("  HARNESS ERROR: {error}");
    }
    let selftest_clean = selftest.iter().all(|t| t.detected && t.prefix_matches);
    for t in &selftest {
        println!(
            "  wal-selftest {:<18} detected={} truncated={}B prefix_matches={}",
            t.corruption, t.detected, t.truncated_bytes, t.prefix_matches
        );
    }

    let clean = supervisor.is_clean() && selftest_clean;
    println!(
        "svc_smoke: {} trials, {} identical, max recovery {:.2} ms -> {}",
        supervisor.trials.len(),
        supervisor.identical_count(),
        supervisor.max_recovery_ms(),
        out.display()
    );

    let report = SmokeReport {
        supervisor,
        wal_selftest: selftest,
    };
    let rendered = serde_json::to_string_pretty(&report)
        .unwrap_or_else(|e| format!("{{\"error\":\"render: {e}\"}}"));
    if let Err(e) = std::fs::write(&out, rendered) {
        eprintln!("svc_smoke: writing {}: {e}", out.display());
        std::process::exit(1);
    }

    if !clean {
        eprintln!("svc_smoke: FAILED — recovered state diverged or corruption escaped");
        std::process::exit(1);
    }
}
