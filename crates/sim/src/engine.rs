//! The discrete-event simulation core.
//!
//! Event types, in tie-break priority order at equal timestamps:
//!
//! 1. **TxComplete** — the in-flight transmission finishes, freeing the
//!    radio;
//! 2. **Slot** — a scheduler slot boundary (every
//!    [`Scheduler::slot_s`](etrain_sched::Scheduler::slot_s) seconds);
//!    running the slot *before* same-instant arrivals implements the
//!    paper's convention that packets arriving within slot `t` become
//!    visible at slot `t+1`;
//! 3. **Heartbeat** — a train app transmits a keep-alive; heartbeats jump
//!    the transmission queue (their daemons transmit directly, unmanaged);
//! 4. **Arrival** — a cargo packet arrives and is offered to the scheduler.
//!
//! The slot context's `heartbeat_departing` flag is true when a heartbeat
//! falls inside `[t, t + slot)`, reproducing Algorithm 1's
//! `t = t_s(h)` trigger at 1-second slots. `predicted_bandwidth_bps` is the
//! *previous* slot's bandwidth — the noisy estimate available to PerES and
//! eTime. `trains_alive` is ground truth from the heartbeat trace (the live
//! system in `etrain-core` uses the `etrain-hb` monitor instead).
//!
//! The loop itself lives in [`Engine`], a stepwise form of the same
//! machine: [`Engine::step`] processes exactly one event, [`Engine::snapshot`]
//! captures a versioned, fingerprinted mid-run checkpoint at any step
//! boundary, and [`Engine::restore`] rebuilds the engine at that point by
//! deterministic replay (verifying the fingerprint). The batch entry
//! points ([`run_engine`] and friends) are thin wrappers over
//! [`run_engine_configured`] that construct an engine and drive it to the
//! horizon.
//!
//! Two kernels ([`EngineKind`]) can drive the machine. The reference
//! *slot* kernel visits every slot boundary; the *event* kernel consumes
//! maximal runs of provably inert boundaries in a single step, advancing
//! simulated time in jumps across standby stretches. The skip is gated on
//! the scheduler's quiescence certificate
//! ([`Scheduler::slot_quiescent`](etrain_sched::Scheduler::slot_quiescent))
//! plus per-boundary checks that nothing observable lands on the skipped
//! slot, so the two kernels produce bit-for-bit identical outputs,
//! journals, and oracle ledgers — the differential property the
//! conformance suite enforces before the slot path can ever be retired.

use std::borrow::Cow;
use std::collections::{HashMap, VecDeque};

use etrain_obs::{prof, Event, Journal};
use etrain_radio::{PowerTrace, Radio, RadioParams, Timeline, Transmission};
use etrain_sched::{HealthTransition, RetryDecision, RetryPolicy, Scheduler, SlotContext};
use etrain_trace::bandwidth::BandwidthTrace;
use etrain_trace::faults::{hash_unit, FaultPlan};
use etrain_trace::heartbeats::Heartbeat;
use etrain_trace::packets::Packet;
use serde::{Deserialize, Serialize};

use crate::oracle::{OracleMode, OracleOutcome, OracleViolation};

/// Salt decorrelating retry-jitter draws from the fault plan's loss coins.
const JITTER_SALT: u64 = 0x6a69_7474_6572_5f75;

/// Environment variable that selects the simulation kernel for binaries
/// and tests that do not set one programmatically (mirrors
/// `ETRAIN_ORACLE` and `ETRAIN_OBS`).
pub const ENGINE_ENV: &str = "ETRAIN_ENGINE";

/// Which kernel advances simulated time inside [`Engine`].
///
/// Both kinds are the *same* state machine over the same event taxonomy;
/// the event kernel merely consumes maximal runs of provably inert slot
/// boundaries in one [`Engine::step`] (see
/// [`Scheduler::slot_quiescent`]), bumping the per-slot counters exactly
/// as the slot kernel would. Outputs, journals and oracle ledgers are
/// bit-for-bit identical across kinds; only wall-clock time differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Process every slot boundary individually (the reference kernel).
    #[default]
    Slot,
    /// Batch-skip quiescent slot boundaries (the fast kernel).
    Event,
}

// Serialized as the same lowercase spelling the `ETRAIN_ENGINE` knob and
// `Display` use, so snapshots and configs read naturally.
impl Serialize for EngineKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.to_string())
    }
}

impl Deserialize for EngineKind {
    fn from_value(value: &serde::Value) -> Result<Self, serde::FromValueError> {
        let raw = value
            .as_str()
            .ok_or_else(|| serde::FromValueError::expected("string", value))?;
        raw.parse().map_err(serde::FromValueError::new)
    }

    /// A missing `engine` field means the artifact predates the event
    /// kernel, which makes it a slot-kernel run.
    fn absent() -> Option<Self> {
        Some(EngineKind::Slot)
    }
}

impl EngineKind {
    /// Strict [`ENGINE_ENV`] reader: `Ok(Slot)` when unset or empty, the
    /// parsed kind otherwise, and `Err` (with the parse reason) for an
    /// unrecognized value. Binaries call this so a typo like
    /// `ETRAIN_ENGINE=evnt` fails fast instead of silently running the
    /// slot kernel.
    ///
    /// # Errors
    ///
    /// The parse reason when the variable holds an unknown kind.
    pub fn try_from_env() -> Result<Self, String> {
        match std::env::var(ENGINE_ENV) {
            Err(_) => Ok(EngineKind::Slot),
            Ok(raw) if raw.trim().is_empty() => Ok(EngineKind::Slot),
            Ok(raw) => raw.parse(),
        }
    }

    /// Reads the kind from the [`ENGINE_ENV`] environment variable.
    ///
    /// Unset, empty, or unparseable values fall back to
    /// [`EngineKind::Slot`] so that stray environment state can never
    /// change results — but an unparseable value warns once on stderr
    /// rather than being swallowed silently (library contexts cannot fail
    /// fast; binaries use [`EngineKind::try_from_env`]).
    pub fn from_env() -> Self {
        EngineKind::try_from_env().unwrap_or_else(|reason| {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!("warning: ignoring {reason}; using the slot kernel");
            });
            EngineKind::Slot
        })
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "slot" | "0" | "false" | "off" => Ok(EngineKind::Slot),
            "event" | "1" | "true" | "on" => Ok(EngineKind::Event),
            other => Err(format!(
                "unknown {ENGINE_ENV} kernel {other:?} (expected slot or event)"
            )),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::Slot => write!(f, "slot"),
            EngineKind::Event => write!(f, "event"),
        }
    }
}

/// A cargo packet that completed transmission, with its full timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedPacket {
    /// The transmitted packet.
    pub packet: Packet,
    /// When the scheduler released it to `Q_TX`, in seconds.
    pub release_s: f64,
    /// When its transmission began, in seconds.
    pub tx_start_s: f64,
    /// When its transmission finished, in seconds.
    pub tx_end_s: f64,
}

impl CompletedPacket {
    /// The scheduling delay the paper measures: release − arrival.
    pub fn scheduling_delay_s(&self) -> f64 {
        self.release_s - self.packet.arrival_s
    }
}

/// A cargo packet the retry layer gave up on: its attempts were exhausted
/// or its age crossed the policy's deadline-aware give-up threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbandonedPacket {
    /// The packet that was abandoned.
    pub packet: Packet,
    /// When the final failed attempt ended, in seconds.
    pub abandoned_at_s: f64,
    /// Transfer attempts made (all failed).
    pub attempts: u32,
}

/// Raw output of one engine run, consumed by
/// [`RunReport`](crate::RunReport).
#[derive(Debug, Clone)]
pub struct EngineOutput {
    /// Completed cargo packets in completion order.
    pub completed: Vec<CompletedPacket>,
    /// Packets released by the scheduler but not finished by the horizon.
    pub in_flight: Vec<Packet>,
    /// Packets the retry layer abandoned (terminal state).
    pub abandoned: Vec<AbandonedPacket>,
    /// Retry attempts scheduled after failed transfers.
    pub retries: usize,
    /// Energy burned by transfer attempts that failed, in joules — already
    /// included in `transmission_energy_j`, broken out here because it is
    /// the fault layer's direct waste.
    pub wasted_retry_energy_j: f64,
    /// Packets still deferred inside the scheduler at the horizon.
    pub still_deferred: usize,
    /// Packets shed by admission control (terminal state: never released).
    pub shed: Vec<Packet>,
    /// Packets released early by the force-flush-oldest shed policy (these
    /// were transmitted; the count is bookkeeping, not a terminal state).
    pub forced_flushes: usize,
    /// Degradation-ladder transitions the scheduler recorded, in time
    /// order; empty for non-degrading schedulers.
    pub health_events: Vec<HealthTransition>,
    /// Heartbeats transmitted.
    pub heartbeats_sent: usize,
    /// Transmission energy above idle, in joules.
    pub transmission_energy_j: f64,
    /// Tail energy above idle, in joules.
    pub tail_energy_j: f64,
    /// Idle baseline energy over the horizon, in joules.
    pub idle_energy_j: f64,
    /// Cumulative radio busy time, in seconds.
    pub busy_time_s: f64,
    /// IDLE→DCH state promotions (signaling events).
    pub promotions: usize,
    /// The simulated horizon, in seconds.
    pub horizon_s: f64,
    /// Every radio busy interval of the run (heartbeats and cargo alike),
    /// in start order — the raw material for power-trace reconstruction.
    pub transmissions: Vec<Transmission>,
    /// The radio parameters the run used.
    pub radio_params: RadioParams,
    /// Discrete events the engine processed to produce this output — the
    /// coordinate [`EngineSnapshot`]s and the kill/resume harness use.
    pub events_processed: u64,
    /// Slot boundaries the run stepped through (kernel-neutral name: the
    /// event kernel retires many per step, but counts each one).
    pub steps_run: u64,
}

impl EngineOutput {
    /// Rebuilds the run's RRC state timeline — the offline view of what
    /// the radio did, suitable for exact re-integration or plotting.
    pub fn timeline(&self) -> Timeline {
        Timeline::from_transmissions(&self.radio_params, &self.transmissions, self.horizon_s)
    }

    /// Samples the run's device power every `dt_s` seconds — the software
    /// analogue of the paper's Monsoon power-monitor capture (Sec. VI-D
    /// samples at 0.1 s).
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not strictly positive.
    pub fn power_trace(&self, dt_s: f64) -> PowerTrace {
        self.timeline().sample(dt_s)
    }
}

#[derive(Debug, Clone, Copy)]
enum TxItem {
    Heartbeat(Heartbeat),
    Packet { packet: Packet, release_s: f64 },
}

impl TxItem {
    fn size_bytes(&self) -> u64 {
        match self {
            TxItem::Heartbeat(hb) => hb.size_bytes,
            TxItem::Packet { packet, .. } => packet.size_bytes,
        }
    }
}

/// The fate of a cargo transfer attempt that just ended. Burned energy
/// stays burned; a retried packet keeps its original arrival time so
/// φ_u(t − t_a) keeps growing.
enum TxFate {
    Delivered,
    Retry { due_s: f64 },
    Abandon { attempts: u32 },
}

// Event priorities at equal time (lower runs first).
const PRIO_TX_COMPLETE: u8 = 0;
const PRIO_SLOT: u8 = 1;
const PRIO_HEARTBEAT: u8 = 2;
const PRIO_ARRIVAL: u8 = 3;
const PRIO_RETRY: u8 = 4;

/// Version tag written into every [`EngineSnapshot`]; bumped whenever the
/// fingerprint's field coverage or encoding changes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A durable mid-run capture of the engine's progress, taken at a step
/// boundary via [`Engine::snapshot`] and consumed by [`Engine::restore`].
///
/// The simulation is deterministic end to end, so the snapshot does not
/// serialize the full mutable state (the scheduler behind the trait object
/// could not be anyway); it records *how far* the run got —
/// `events_processed` — plus an FNV-1a fingerprint over every observable
/// piece of engine, radio and scheduler state. Restoring replays the run
/// to the same event count on freshly built inputs and verifies the
/// fingerprint, which catches divergent inputs and nondeterminism between
/// the snapshotting process and the resuming one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineSnapshot {
    /// Snapshot format version ([`SNAPSHOT_VERSION`] at write time).
    pub version: u32,
    /// Simulated time of the last processed event, in seconds.
    pub taken_at_s: f64,
    /// Events the engine had processed when the snapshot was taken.
    pub events_processed: u64,
    /// Slot boundaries the engine had run (accepted under the historic
    /// `slots_run` name when deserializing older snapshots).
    pub steps_run: u64,
    /// Records in the attached journal at snapshot time (0 when
    /// unjournaled) — the durable journal prefix a resume merges with.
    pub journal_events: usize,
    /// The kernel that took the snapshot. Replay must use the same kind:
    /// the event kernel retires whole slot batches per step, so only a
    /// same-kind replay lands exactly on `events_processed`. Older
    /// snapshots (which predate the field) default to
    /// [`EngineKind::Slot`].
    pub engine: EngineKind,
    /// FNV-1a fingerprint of the engine's observable mutable state.
    pub fingerprint: u64,
}

// Hand-written (not derived) so older snapshots keep parsing: `steps_run`
// falls back to the historic `slots_run` key, and a missing `engine`
// defaults to the slot kernel.
impl Serialize for EngineSnapshot {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("version".to_string(), self.version.to_value()),
            ("taken_at_s".to_string(), self.taken_at_s.to_value()),
            (
                "events_processed".to_string(),
                self.events_processed.to_value(),
            ),
            ("steps_run".to_string(), self.steps_run.to_value()),
            ("journal_events".to_string(), self.journal_events.to_value()),
            ("engine".to_string(), self.engine.to_value()),
            ("fingerprint".to_string(), self.fingerprint.to_value()),
        ])
    }
}

impl Deserialize for EngineSnapshot {
    fn from_value(value: &serde::Value) -> Result<Self, serde::FromValueError> {
        let entries = value
            .as_object()
            .ok_or_else(|| serde::FromValueError::expected("object", value))?;
        let lookup = |name: &str| entries.iter().find(|(key, _)| key == name).map(|(_, v)| v);
        let steps_run = match lookup("steps_run").or_else(|| lookup("slots_run")) {
            Some(v) => u64::from_value(v)?,
            None => return Err(serde::FromValueError::missing_field("steps_run")),
        };
        let engine = match lookup("engine") {
            Some(v) => EngineKind::from_value(v)?,
            None => EngineKind::Slot,
        };
        Ok(EngineSnapshot {
            version: serde::__field(entries, "version")?,
            taken_at_s: serde::__field(entries, "taken_at_s")?,
            events_processed: serde::__field(entries, "events_processed")?,
            steps_run,
            journal_events: serde::__field(entries, "journal_events")?,
            engine,
            fingerprint: serde::__field(entries, "fingerprint")?,
        })
    }
}

/// Why [`Engine::restore`] refused a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot was written by a different format version.
    VersionMismatch {
        /// The version this build writes and reads.
        expected: u32,
        /// The version found in the snapshot.
        found: u32,
    },
    /// The inputs ran out of events before reaching the snapshot's
    /// `events_processed` — the snapshot is from different inputs.
    ReplayExhausted {
        /// The snapshot's event count.
        wanted: u64,
        /// Where replay actually stopped.
        reached: u64,
    },
    /// Replay reached the event count but the state fingerprint differs —
    /// the inputs changed or the simulation is nondeterministic.
    FingerprintMismatch {
        /// The snapshot's fingerprint.
        expected: u64,
        /// The replayed engine's fingerprint.
        found: u64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::VersionMismatch { expected, found } => write!(
                f,
                "snapshot version {found} is not this build's version {expected}"
            ),
            SnapshotError::ReplayExhausted { wanted, reached } => write!(
                f,
                "inputs exhausted at event {reached} before the snapshot's event {wanted}"
            ),
            SnapshotError::FingerprintMismatch { expected, found } => write!(
                f,
                "state fingerprint {found:#018x} does not match the snapshot's {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a over little-endian field encodings, with every field length
/// explicit — the same stable cross-process construction the grid
/// checkpoint fingerprint uses.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// The discrete-event loop as a stepwise state machine.
///
/// [`Engine::new`] validates the inputs and applies the fault plan's
/// heartbeat filtering; each [`Engine::step`] processes exactly one event
/// (returning `false` once no event at or before the horizon remains);
/// [`Engine::finish`] performs the horizon finalization and produces the
/// [`EngineOutput`]. [`Engine::run`] drives step-to-exhaustion plus
/// finish, and is bit-for-bit the behaviour of [`run_engine_journaled`].
///
/// Between steps the engine can be checkpointed ([`Engine::snapshot`]) and
/// later rebuilt at the same point ([`Engine::restore`]); see
/// [`EngineSnapshot`] for the replay-based restore semantics.
pub struct Engine<'a> {
    scheduler: &'a mut dyn Scheduler,
    packets: &'a [Packet],
    heartbeats: Cow<'a, [Heartbeat]>,
    bandwidth: &'a BandwidthTrace,
    radio_params: &'a RadioParams,
    horizon_s: f64,
    plan: &'a FaultPlan,
    retry: &'a RetryPolicy,
    journal: Option<&'a mut Journal>,
    _span: prof::Span,

    kind: EngineKind,
    radio: Radio,
    slot_s: f64,
    txq: VecDeque<TxItem>,
    in_flight: Option<(TxItem, f64, f64)>, // (item, start, end)
    completed: Vec<CompletedPacket>,
    abandoned: Vec<AbandonedPacket>,
    transmissions: Vec<Transmission>,
    heartbeats_sent: usize,
    arrival_idx: usize,
    hb_idx: usize,
    next_slot_s: f64,
    // Retry state: packets awaiting their backed-off re-offer, keyed by
    // due time, and each packet's failed-attempt count.
    retryq: Vec<(f64, Packet)>,
    failed_attempts: HashMap<u64, u32>,
    retries: usize,
    wasted_retry_energy_j: f64,
    // Injected oracle alarms, delivered at the first slot boundary at or
    // after each alarm time (empty for the common fault-free run).
    alarms: Vec<f64>,
    alarm_idx: usize,
    events_processed: u64,
    steps_run: u64,
    last_event_s: f64,
}

impl<'a> Engine<'a> {
    /// Builds an engine over the given inputs, ready to step from t = 0.
    ///
    /// `packets` and `heartbeats` must be sorted by time (the generators
    /// in `etrain-trace` produce sorted traces). The run covers
    /// `[0, horizon_s]`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon_s` is not strictly positive, `retry` fails
    /// [`RetryPolicy::validate`], or an input trace is unsorted.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        scheduler: &'a mut dyn Scheduler,
        packets: &'a [Packet],
        heartbeats: &'a [Heartbeat],
        bandwidth: &'a BandwidthTrace,
        radio_params: &'a RadioParams,
        horizon_s: f64,
        plan: &'a FaultPlan,
        retry: &'a RetryPolicy,
        journal: Option<&'a mut Journal>,
    ) -> Engine<'a> {
        let span = prof::Span::enter(prof::Phase::EngineRun);
        if journal.is_some() {
            scheduler.set_obs_enabled(true);
        }
        assert!(horizon_s > 0.0, "horizon must be positive");
        if let Err(why) = retry.validate() {
            panic!("invalid retry policy: {why}");
        }
        assert!(
            packets.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
            "packet trace must be sorted by arrival time"
        );
        assert!(
            heartbeats.windows(2).all(|w| w[0].time_s <= w[1].time_s),
            "heartbeat trace must be sorted by time"
        );

        // Heartbeats dropped by the plan (or inside a death window) never
        // depart. A no-op plan leaves the slice untouched.
        let heartbeats: Cow<'a, [Heartbeat]> = if plan.is_noop() {
            Cow::Borrowed(heartbeats)
        } else {
            Cow::Owned(plan.apply_to_heartbeats(heartbeats))
        };

        let radio = Radio::new(radio_params.clone());
        let slot_s = scheduler.slot_s();
        let mut alarms = plan.oracle_alarms.clone();
        alarms.sort_by(f64::total_cmp);

        Engine {
            scheduler,
            packets,
            heartbeats,
            bandwidth,
            radio_params,
            horizon_s,
            plan,
            retry,
            journal,
            _span: span,
            kind: EngineKind::Slot,
            radio,
            slot_s,
            txq: VecDeque::new(),
            in_flight: None,
            completed: Vec::new(),
            abandoned: Vec::new(),
            transmissions: Vec::new(),
            heartbeats_sent: 0,
            arrival_idx: 0,
            hb_idx: 0,
            next_slot_s: 0.0,
            retryq: Vec::new(),
            failed_attempts: HashMap::new(),
            retries: 0,
            wasted_retry_energy_j: 0.0,
            alarms,
            alarm_idx: 0,
            events_processed: 0,
            steps_run: 0,
            last_event_s: 0.0,
        }
    }

    /// Selects the kernel that advances simulated time (the default is
    /// [`EngineKind::Slot`]). Call before the first [`Engine::step`]:
    /// switching kernels mid-run would shift the step boundaries
    /// snapshots are addressed by.
    pub fn with_kind(mut self, kind: EngineKind) -> Self {
        self.kind = kind;
        self
    }

    /// The kernel this engine runs under.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Slot boundaries run so far.
    pub fn steps_run(&self) -> u64 {
        self.steps_run
    }

    /// Simulated time of the last processed event, in seconds (0 before
    /// the first step).
    pub fn now_s(&self) -> f64 {
        self.last_event_s
    }

    /// Records currently in the attached journal (0 when unjournaled).
    pub fn journal_events(&self) -> usize {
        self.journal.as_deref().map_or(0, Journal::len)
    }

    /// Attaches a journal mid-run, enabling scheduler observability from
    /// this point on — the resume path uses this so a restored engine
    /// journals only post-snapshot events (the pre-snapshot prefix is the
    /// durable journal persisted alongside the snapshot).
    pub fn attach_journal(&mut self, journal: &'a mut Journal) {
        self.scheduler.set_obs_enabled(true);
        self.journal = Some(journal);
    }

    /// The earliest pending event, as `(time, priority)`.
    fn next_event(&self) -> Option<(f64, u8)> {
        let mut next: Option<(f64, u8)> = None;
        let consider = |t: f64, prio: u8, next: &mut Option<(f64, u8)>| {
            let better = match next {
                None => true,
                Some((bt, bp)) => t < *bt || (t == *bt && prio < *bp),
            };
            if better {
                *next = Some((t, prio));
            }
        };
        if let Some((_, _, end)) = self.in_flight {
            consider(end, PRIO_TX_COMPLETE, &mut next);
        }
        consider(self.next_slot_s, PRIO_SLOT, &mut next);
        if self.hb_idx < self.heartbeats.len() {
            consider(
                self.heartbeats[self.hb_idx].time_s,
                PRIO_HEARTBEAT,
                &mut next,
            );
        }
        if self.arrival_idx < self.packets.len() {
            consider(
                self.packets[self.arrival_idx].arrival_s,
                PRIO_ARRIVAL,
                &mut next,
            );
        }
        if let Some(due) = self.retryq.iter().map(|(due, _)| *due).reduce(f64::min) {
            consider(due, PRIO_RETRY, &mut next);
        }
        next
    }

    /// Settles a cargo transfer attempt that ended at `end`.
    fn settle_attempt(&mut self, packet: &Packet, start: f64, end: f64) -> TxFate {
        let attempt = self.failed_attempts.get(&packet.id).copied().unwrap_or(0) + 1;
        if !self.plan.loses_transmission(packet.id, attempt) {
            return TxFate::Delivered;
        }
        self.wasted_retry_energy_j += (end - start) * self.radio_params.dch_extra_mw() / 1000.0;
        self.failed_attempts.insert(packet.id, attempt);
        let jitter = hash_unit(self.plan.seed ^ JITTER_SALT, packet.id, u64::from(attempt));
        match self.retry.decide(attempt, end, packet.arrival_s, jitter) {
            RetryDecision::RetryAfter(delay) => TxFate::Retry { due_s: end + delay },
            RetryDecision::Abandon => TxFate::Abandon { attempts: attempt },
        }
    }

    /// Event-kernel fast path: retires a maximal run of *inert* slot
    /// boundaries starting at `t` in one step, advancing every per-event
    /// counter exactly as the slot kernel would. Returns whether at least
    /// one slot was retired; `false` means the slot at `t` must be
    /// processed by the normal path (which always makes progress, so the
    /// two paths cannot livelock).
    ///
    /// A slot is inert when the scheduler certifies quiescence
    /// ([`Scheduler::slot_quiescent`]) *and* nothing observable touches
    /// it: no heartbeat departs within it (so `heartbeat_departing` is
    /// false and no heartbeat event precedes it), no alarm is due, no
    /// arrival, retry or transmission completion lands at or before it,
    /// and the train-liveness flag matches the value the certificate was
    /// issued for. Quiescent slots release nothing and buffer no obs
    /// events, so skipping them changes neither the output, the journal,
    /// nor the state fingerprint. The certificate holds across the whole
    /// batch because the skipped slots are, by definition, no-ops: only
    /// an arrival, retry, or heartbeat-flagged slot can invalidate it,
    /// and each of those ends the batch.
    fn batch_skip_slots(&mut self, t: f64) -> bool {
        if self.alarm_idx < self.alarms.len() && self.alarms[self.alarm_idx] <= t {
            return false;
        }
        let trains_alive = self.hb_idx < self.heartbeats.len() && !self.plan.trains_dead_at(t);
        if !self.scheduler.slot_quiescent(trains_alive) {
            return false;
        }
        let _span = prof::Span::enter(prof::Phase::EngineSkip);
        // None of these can change while slots are skipped (the batch
        // processes no event that could touch them), so every stop
        // condition of the form `blocker <= s` collapses into one
        // precomputed exclusive bound and the loop body stays minimal:
        //   - TxComplete outranks the slot at equal time, and any earlier
        //     completion must run first (`end <= s` blocks);
        //   - arrivals, retries and oracle alarms at or before the slot
        //     block it (conservative at equality for the alarm/arrival
        //     tie-breaks: processing that slot normally is identical);
        //   - a liveness flip would be a real state change for the
        //     scheduler, and the certificate only covers the issued
        //     `trains_alive` value, so the batch must stop at the next
        //     death-window boundary (where `trains_dead_at` can change).
        let mut stop = f64::INFINITY;
        let mut bound = |b: Option<f64>| {
            if let Some(b) = b {
                stop = stop.min(b);
            }
        };
        bound(self.in_flight.map(|(_, _, end)| end));
        bound(self.packets.get(self.arrival_idx).map(|p| p.arrival_s));
        bound(self.retryq.iter().map(|(due, _)| *due).reduce(f64::min));
        bound(self.alarms.get(self.alarm_idx).copied());
        if self.hb_idx < self.heartbeats.len() {
            bound(self.plan.next_train_death_boundary(t));
        }
        let next_heartbeat = self.heartbeats.get(self.hb_idx).map(|hb| hb.time_s);
        let mut s = t;
        let mut skipped = 0u64;
        loop {
            let blocked = s > self.horizon_s
                || s >= stop
                // A heartbeat inside [s, s + slot) flags the slot; one
                // before s is an event that precedes it. Kept in exact
                // `hb < s + slot` form — folding it into `stop` would
                // need an `hb - slot` subtraction whose rounding could
                // disagree with the slot kernel's own comparison.
                || next_heartbeat.is_some_and(|hb| hb < s + self.slot_s);
            if blocked {
                break;
            }
            // Accumulate the boundary by repeated addition — bit-exact
            // with the slot kernel's own float accumulation.
            self.next_slot_s += self.slot_s;
            self.last_event_s = s;
            skipped += 1;
            s = self.next_slot_s;
        }
        self.steps_run += skipped;
        self.events_processed += skipped;
        skipped > 0
    }

    /// Processes exactly one event; returns `false` — consuming nothing —
    /// once no event at or before the horizon remains.
    pub fn step(&mut self) -> bool {
        let Some((t, prio)) = self.next_event() else {
            return false;
        };
        if t > self.horizon_s {
            return false;
        }

        match prio {
            PRIO_TX_COMPLETE => {
                let (item, start, end) = self
                    .in_flight
                    .take()
                    .expect("tx-complete implies in-flight");
                self.radio.end_transmission(end);
                if let TxItem::Packet { packet, release_s } = item {
                    match self.settle_attempt(&packet, start, end) {
                        TxFate::Delivered => self.completed.push(CompletedPacket {
                            packet,
                            release_s,
                            tx_start_s: start,
                            tx_end_s: end,
                        }),
                        TxFate::Retry { due_s } => {
                            self.retries += 1;
                            if let Some(j) = self.journal.as_deref_mut() {
                                j.push(
                                    end,
                                    Event::RetryAttempt {
                                        packet_id: packet.id,
                                        attempt: self
                                            .failed_attempts
                                            .get(&packet.id)
                                            .copied()
                                            .unwrap_or(0),
                                        abandoned: false,
                                    },
                                );
                            }
                            self.retryq.push((due_s, packet));
                        }
                        TxFate::Abandon { attempts } => {
                            if let Some(j) = self.journal.as_deref_mut() {
                                j.push(
                                    end,
                                    Event::RetryAttempt {
                                        packet_id: packet.id,
                                        attempt: attempts,
                                        abandoned: true,
                                    },
                                );
                            }
                            self.abandoned.push(AbandonedPacket {
                                packet,
                                abandoned_at_s: end,
                                attempts,
                            })
                        }
                    }
                }
            }
            PRIO_SLOT => {
                if self.kind == EngineKind::Event && self.batch_skip_slots(t) {
                    // The batch already advanced every per-event counter
                    // for each retired slot, and quiescent slots cannot
                    // have queued work for the transmission starter below.
                    return true;
                }
                while self.alarm_idx < self.alarms.len() && self.alarms[self.alarm_idx] <= t {
                    self.scheduler.on_oracle_violation(t);
                    self.alarm_idx += 1;
                }
                let heartbeat_departing = self.heartbeats[self.hb_idx..]
                    .iter()
                    .take_while(|hb| hb.time_s < t + self.slot_s)
                    .any(|hb| hb.time_s >= t);
                let trains_alive =
                    self.hb_idx < self.heartbeats.len() && !self.plan.trains_dead_at(t);
                let ctx = SlotContext {
                    now_s: t,
                    heartbeat_departing,
                    predicted_bandwidth_bps: self
                        .bandwidth
                        .bandwidth_at((t - self.slot_s).max(0.0)),
                    trains_alive,
                };
                let released = {
                    let _span = prof::Span::enter(prof::Phase::SchedulerSlot);
                    self.scheduler.on_slot(&ctx)
                };
                if let Some(j) = self.journal.as_deref_mut() {
                    for (time_s, event) in self.scheduler.take_obs_events() {
                        j.push(time_s, event);
                    }
                }
                for packet in released {
                    self.txq.push_back(TxItem::Packet {
                        packet,
                        release_s: t,
                    });
                }
                self.next_slot_s += self.slot_s;
                self.steps_run += 1;
            }
            PRIO_HEARTBEAT => {
                let hb = self.heartbeats[self.hb_idx];
                self.hb_idx += 1;
                self.heartbeats_sent += 1;
                if let Some(j) = self.journal.as_deref_mut() {
                    j.push(
                        t,
                        Event::HeartbeatFired {
                            size_bytes: hb.size_bytes,
                        },
                    );
                }
                // Heartbeats are sent by their own daemons: front of queue.
                self.txq.push_front(TxItem::Heartbeat(hb));
            }
            PRIO_ARRIVAL => {
                let packet = self.packets[self.arrival_idx];
                self.arrival_idx += 1;
                let released = {
                    let _span = prof::Span::enter(prof::Phase::SchedulerArrival);
                    self.scheduler
                        .on_arrival(packet, t)
                        .expect("workload apps are registered with the scheduler")
                };
                if let Some(j) = self.journal.as_deref_mut() {
                    for (time_s, event) in self.scheduler.take_obs_events() {
                        j.push(time_s, event);
                    }
                }
                for packet in released {
                    self.txq.push_back(TxItem::Packet {
                        packet,
                        release_s: t,
                    });
                }
            }
            PRIO_RETRY => {
                // Pop the earliest-due retry (first of equals — insertion
                // order keeps this deterministic) and re-offer it through
                // the scheduler's failure-feedback hook.
                let idx = self
                    .retryq
                    .iter()
                    .enumerate()
                    .min_by(|(_, (a, _)), (_, (b, _))| a.total_cmp(b))
                    .map(|(i, _)| i)
                    .expect("retry event implies non-empty retry queue");
                let (_, packet) = self.retryq.remove(idx);
                let released = {
                    let _span = prof::Span::enter(prof::Phase::SchedulerRetry);
                    self.scheduler
                        .on_tx_failure(packet, t)
                        .expect("retried packets belong to registered apps")
                };
                if let Some(j) = self.journal.as_deref_mut() {
                    for (time_s, event) in self.scheduler.take_obs_events() {
                        j.push(time_s, event);
                    }
                }
                for packet in released {
                    self.txq.push_back(TxItem::Packet {
                        packet,
                        release_s: t,
                    });
                }
            }
            _ => unreachable!("unknown event priority"),
        }

        // Start the next transmission if the radio is free. Data flows
        // only after any RRC state promotion completes (IDLE→DCH or
        // FACH→DCH signaling — 0 s with the paper's defaults, non-zero in
        // the fast-dormancy ablation); the radio is busy throughout.
        if self.in_flight.is_none() {
            if let Some(item) = self.txq.pop_front() {
                let promotion_s = match self.radio.state() {
                    etrain_radio::RrcState::Idle => self.radio_params.promotion_idle_to_dch_s(),
                    etrain_radio::RrcState::Fach => self.radio_params.promotion_fach_to_dch_s(),
                    etrain_radio::RrcState::Dch => 0.0,
                };
                if let Some(j) = self.journal.as_deref_mut() {
                    // Starting out of IDLE means the transmission re-used a
                    // promotion or tail some earlier transmission paid for.
                    let from_state = match self.radio.state() {
                        etrain_radio::RrcState::Idle => None,
                        etrain_radio::RrcState::Fach => Some("fach"),
                        etrain_radio::RrcState::Dch => Some("dch"),
                    };
                    if let Some(from_state) = from_state {
                        j.push(
                            t,
                            Event::TailReuse {
                                from_state: from_state.to_string(),
                                size_bytes: item.size_bytes(),
                            },
                        );
                    }
                }
                let duration = promotion_s
                    + self
                        .plan
                        .transfer_time_s(self.bandwidth, t + promotion_s, item.size_bytes());
                self.radio.start_transmission(t);
                self.transmissions.push(Transmission::new(t, duration));
                self.in_flight = Some((item, t, t + duration));
            }
        }

        self.events_processed += 1;
        self.last_event_s = t;
        true
    }

    /// Finalizes the run at the horizon and produces the output.
    ///
    /// Call after [`Engine::step`] returns `false`; calling earlier
    /// truncates the run at the current step boundary (everything still
    /// queued counts as unfinished).
    pub fn finish(mut self) -> EngineOutput {
        // Let the in-flight transmission finish if it ends exactly at the
        // horizon boundary; otherwise count it as unfinished. A boundary
        // completion still flips its loss coin: a lost final attempt whose
        // retry falls past the horizon counts as unfinished, not completed.
        let mut in_flight_unfinished = Vec::new();
        if let Some((item, start, end)) = self.in_flight.take() {
            if end <= self.horizon_s {
                self.radio.end_transmission(end);
                if let TxItem::Packet { packet, release_s } = item {
                    match self.settle_attempt(&packet, start, end) {
                        TxFate::Delivered => self.completed.push(CompletedPacket {
                            packet,
                            release_s,
                            tx_start_s: start,
                            tx_end_s: end,
                        }),
                        TxFate::Retry { .. } => {
                            self.retries += 1;
                            if let Some(j) = self.journal.as_deref_mut() {
                                j.push(
                                    end,
                                    Event::RetryAttempt {
                                        packet_id: packet.id,
                                        attempt: self
                                            .failed_attempts
                                            .get(&packet.id)
                                            .copied()
                                            .unwrap_or(0),
                                        abandoned: false,
                                    },
                                );
                            }
                            in_flight_unfinished.push(packet);
                        }
                        TxFate::Abandon { attempts } => {
                            if let Some(j) = self.journal.as_deref_mut() {
                                j.push(
                                    end,
                                    Event::RetryAttempt {
                                        packet_id: packet.id,
                                        attempt: attempts,
                                        abandoned: true,
                                    },
                                );
                            }
                            self.abandoned.push(AbandonedPacket {
                                packet,
                                abandoned_at_s: end,
                                attempts,
                            })
                        }
                    }
                }
            } else if let TxItem::Packet { packet, .. } = item {
                in_flight_unfinished.push(packet);
            }
        }
        self.radio.advance_to(self.horizon_s);
        for item in std::mem::take(&mut self.txq) {
            if let TxItem::Packet { packet, .. } = item {
                in_flight_unfinished.push(packet);
            }
        }
        // Retries still backing off at the horizon were released but never
        // re-delivered: unfinished.
        for (_, packet) in std::mem::take(&mut self.retryq) {
            in_flight_unfinished.push(packet);
        }

        EngineOutput {
            completed: std::mem::take(&mut self.completed),
            in_flight: in_flight_unfinished,
            abandoned: std::mem::take(&mut self.abandoned),
            retries: self.retries,
            wasted_retry_energy_j: self.wasted_retry_energy_j,
            still_deferred: self.scheduler.pending(),
            shed: self.scheduler.take_shed(),
            forced_flushes: self.scheduler.forced_flushes(),
            health_events: self.scheduler.health_transitions(),
            heartbeats_sent: self.heartbeats_sent,
            transmission_energy_j: self.radio.transmission_energy_j(),
            tail_energy_j: self.radio.tail_energy_j(),
            idle_energy_j: self.radio_params.idle_mw() / 1000.0 * self.horizon_s,
            busy_time_s: self.radio.busy_time_s(),
            promotions: self.radio.promotions(),
            horizon_s: self.horizon_s,
            transmissions: std::mem::take(&mut self.transmissions),
            radio_params: self.radio_params.clone(),
            events_processed: self.events_processed,
            steps_run: self.steps_run,
        }
    }

    /// Steps to exhaustion and finalizes — the batch entry points are thin
    /// wrappers over this.
    pub fn run(mut self) -> EngineOutput {
        while self.step() {}
        self.finish()
    }

    /// Captures a versioned, fingerprinted checkpoint of the run at the
    /// current step boundary. Cheap relative to a run (one hashing pass
    /// over the engine's state), serializable, and consumed by
    /// [`Engine::restore`].
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            version: SNAPSHOT_VERSION,
            taken_at_s: self.last_event_s,
            events_processed: self.events_processed,
            steps_run: self.steps_run,
            journal_events: self.journal_events(),
            engine: self.kind,
            fingerprint: self.fingerprint(),
        }
    }

    /// FNV-1a over every observable piece of mutable run state: engine
    /// counters and queues, terminal records, radio accounting, and the
    /// scheduler's non-consuming observables.
    fn fingerprint(&self) -> u64 {
        let mut f = Fnv::new();
        f.write_u64(self.events_processed);
        f.write_u64(self.steps_run);
        f.write_f64(self.last_event_s);
        f.write_f64(self.next_slot_s);
        // The kernel kind participates in the replay coordinate system
        // (batch boundaries differ across kinds), but only non-default
        // kinds are tagged so every pre-existing slot-kernel fingerprint
        // stays valid.
        if self.kind != EngineKind::Slot {
            f.write_u64(self.kind as u64);
        }
        f.write_u64(self.arrival_idx as u64);
        f.write_u64(self.hb_idx as u64);
        f.write_u64(self.alarm_idx as u64);
        f.write_u64(self.heartbeats_sent as u64);
        f.write_u64(self.retries as u64);
        f.write_f64(self.wasted_retry_energy_j);

        let item = |f: &mut Fnv, item: &TxItem| match item {
            TxItem::Heartbeat(hb) => {
                f.write_u64(0);
                f.write_f64(hb.time_s);
                f.write_u64(hb.size_bytes);
            }
            TxItem::Packet { packet, release_s } => {
                f.write_u64(1);
                f.write_u64(packet.id);
                f.write_f64(packet.arrival_s);
                f.write_u64(packet.size_bytes);
                f.write_f64(*release_s);
            }
        };
        f.write_u64(self.txq.len() as u64);
        for queued in &self.txq {
            item(&mut f, queued);
        }
        match &self.in_flight {
            None => f.write_u64(0),
            Some((flying, start, end)) => {
                f.write_u64(1);
                item(&mut f, flying);
                f.write_f64(*start);
                f.write_f64(*end);
            }
        }
        f.write_u64(self.retryq.len() as u64);
        for (due, packet) in &self.retryq {
            f.write_f64(*due);
            f.write_u64(packet.id);
        }
        let mut attempts: Vec<(u64, u32)> =
            self.failed_attempts.iter().map(|(k, v)| (*k, *v)).collect();
        attempts.sort_unstable_by_key(|(id, _)| *id);
        f.write_u64(attempts.len() as u64);
        for (id, count) in attempts {
            f.write_u64(id);
            f.write_u64(u64::from(count));
        }

        f.write_u64(self.completed.len() as u64);
        for c in &self.completed {
            f.write_u64(c.packet.id);
            f.write_f64(c.release_s);
            f.write_f64(c.tx_start_s);
            f.write_f64(c.tx_end_s);
        }
        f.write_u64(self.abandoned.len() as u64);
        for a in &self.abandoned {
            f.write_u64(a.packet.id);
            f.write_f64(a.abandoned_at_s);
            f.write_u64(u64::from(a.attempts));
        }
        f.write_u64(self.transmissions.len() as u64);
        for tx in &self.transmissions {
            f.write_f64(tx.start_s);
            f.write_f64(tx.duration_s);
        }

        f.write_u64(match self.radio.state() {
            etrain_radio::RrcState::Idle => 0,
            etrain_radio::RrcState::Fach => 1,
            etrain_radio::RrcState::Dch => 2,
        });
        f.write_f64(self.radio.now_s());
        f.write_f64(self.radio.busy_time_s());
        f.write_f64(self.radio.transmission_energy_j());
        f.write_f64(self.radio.tail_energy_j());
        f.write_u64(self.radio.promotions() as u64);

        f.write_u64(self.scheduler.pending() as u64);
        f.write_u64(self.scheduler.pending_bytes());
        f.write_u64(self.scheduler.forced_flushes() as u64);
        f.write_u64(self.scheduler.health_transitions().len() as u64);
        f.finish()
    }

    /// Rebuilds an engine at a snapshot's step boundary by deterministic
    /// replay over freshly built inputs: steps a new engine (unjournaled)
    /// to the snapshot's `events_processed`, then verifies the state
    /// fingerprint. The scheduler must be freshly built from the same
    /// configuration the snapshotting run used. Replay runs under the
    /// snapshot's own kernel kind, so event-kernel batch boundaries are
    /// reproduced exactly and the replay lands on — never overshoots —
    /// the recorded event count.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::VersionMismatch`] for a foreign snapshot format,
    /// [`SnapshotError::ReplayExhausted`] when the inputs end early, and
    /// [`SnapshotError::FingerprintMismatch`] when replay reaches the
    /// event count in a different state — each means the snapshot does not
    /// belong to these inputs (or the simulation lost determinism).
    ///
    /// # Panics
    ///
    /// Panics as [`Engine::new`] does on invalid inputs.
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        scheduler: &'a mut dyn Scheduler,
        packets: &'a [Packet],
        heartbeats: &'a [Heartbeat],
        bandwidth: &'a BandwidthTrace,
        radio_params: &'a RadioParams,
        horizon_s: f64,
        plan: &'a FaultPlan,
        retry: &'a RetryPolicy,
        snapshot: &EngineSnapshot,
    ) -> Result<Engine<'a>, SnapshotError> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                expected: SNAPSHOT_VERSION,
                found: snapshot.version,
            });
        }
        let mut engine = Engine::new(
            scheduler,
            packets,
            heartbeats,
            bandwidth,
            radio_params,
            horizon_s,
            plan,
            retry,
            None,
        )
        .with_kind(snapshot.engine);
        while engine.events_processed < snapshot.events_processed {
            if !engine.step() {
                return Err(SnapshotError::ReplayExhausted {
                    wanted: snapshot.events_processed,
                    reached: engine.events_processed,
                });
            }
        }
        let found = engine.fingerprint();
        if found != snapshot.fingerprint {
            return Err(SnapshotError::FingerprintMismatch {
                expected: snapshot.fingerprint,
                found,
            });
        }
        Ok(engine)
    }
}

/// Everything that varies between the `run_engine*` entry points: fault
/// injection, retry policy, journaling, oracle auditing, and the kernel
/// kind. Each thin wrapper fills in its defaults and delegates to
/// [`run_engine_configured`].
#[derive(Debug)]
pub struct EngineOpts<'a> {
    /// The fault plan ([`FaultPlan::none`] for clean runs).
    pub plan: &'a FaultPlan,
    /// Retry policy applied to failed transfers.
    pub retry: &'a RetryPolicy,
    /// Optional structured-event journal.
    pub journal: Option<&'a mut Journal>,
    /// Oracle audit applied to the finished output.
    pub oracle: OracleMode,
    /// The kernel that advances simulated time.
    pub engine: EngineKind,
}

/// The single configurable entry point behind every `run_engine*`
/// wrapper: builds an [`Engine`] with the requested kernel, drives it to
/// the horizon, and applies the requested oracle audit to the output.
///
/// # Errors
///
/// In [`OracleMode::Strict`], the first [`OracleViolation`] the audit
/// finds. The other modes never fail.
///
/// # Panics
///
/// Panics as [`Engine::new`] does on invalid inputs.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub fn run_engine_configured(
    scheduler: &mut dyn Scheduler,
    packets: &[Packet],
    heartbeats: &[Heartbeat],
    bandwidth: &BandwidthTrace,
    radio_params: &RadioParams,
    horizon_s: f64,
    opts: EngineOpts<'_>,
) -> Result<(EngineOutput, Option<OracleOutcome>), OracleViolation> {
    let output = Engine::new(
        scheduler,
        packets,
        heartbeats,
        bandwidth,
        radio_params,
        horizon_s,
        opts.plan,
        opts.retry,
        opts.journal,
    )
    .with_kind(opts.engine)
    .run();
    if !opts.oracle.is_enabled() {
        return Ok((output, None));
    }
    let mut outcome = crate::oracle::audit_engine(&output, packets, heartbeats, opts.plan);
    outcome.mode = opts.oracle;
    crate::oracle::record_outcome(&outcome);
    if opts.oracle == OracleMode::Strict {
        if let Some(first) = outcome.violations.first() {
            return Err(first.clone());
        }
    }
    Ok((output, Some(outcome)))
}

/// Runs one simulation.
///
/// `packets` and `heartbeats` must be sorted by time (the generators in
/// `etrain-trace` produce sorted traces). The run covers `[0, horizon_s]`;
/// tail energy accrued after the last transmission is truncated at the
/// horizon, exactly like a power-monitor capture that stops sampling.
///
/// The kernel comes from the [`ENGINE_ENV`] environment variable (slot
/// when unset); both kinds produce identical results.
///
/// # Panics
///
/// Panics if `horizon_s` is not strictly positive or an input trace is
/// unsorted.
pub fn run_engine(
    scheduler: &mut dyn Scheduler,
    packets: &[Packet],
    heartbeats: &[Heartbeat],
    bandwidth: &BandwidthTrace,
    radio_params: &RadioParams,
    horizon_s: f64,
) -> EngineOutput {
    run_engine_with_faults(
        scheduler,
        packets,
        heartbeats,
        bandwidth,
        radio_params,
        horizon_s,
        &FaultPlan::none(),
        &RetryPolicy::default(),
    )
}

/// Runs one simulation under a [`FaultPlan`], with failed transfers retried
/// per `retry`.
///
/// On top of [`run_engine`]'s semantics:
///
/// - heartbeats dropped by the plan (or falling in a train-death window)
///   never depart; during a death window the slot context reports
///   `trains_alive = false`, so eTrain stops deferring (paper Sec. V-3) and
///   resumes piggybacking when the window ends;
/// - outage windows carry zero bits, stretching any overlapping transfer;
/// - each transfer attempt may be lost per the plan's loss coin. A lost
///   attempt still burns its radio energy (and fires its tail); the packet
///   is then either re-queued — after the policy's backoff, through
///   [`Scheduler::on_tx_failure`], keeping its *original* arrival time so
///   its delay cost keeps growing — or abandoned (deadline-aware give-up).
///
/// `FaultPlan::none()` short-circuits every fault query, making this
/// bit-for-bit identical to [`run_engine`].
///
/// # Panics
///
/// Panics as [`run_engine`] does, and if `retry` fails
/// [`RetryPolicy::validate`].
#[allow(clippy::too_many_arguments)]
pub fn run_engine_with_faults(
    scheduler: &mut dyn Scheduler,
    packets: &[Packet],
    heartbeats: &[Heartbeat],
    bandwidth: &BandwidthTrace,
    radio_params: &RadioParams,
    horizon_s: f64,
    plan: &FaultPlan,
    retry: &RetryPolicy,
) -> EngineOutput {
    run_engine_journaled(
        scheduler,
        packets,
        heartbeats,
        bandwidth,
        radio_params,
        horizon_s,
        plan,
        retry,
        None,
    )
}

/// [`run_engine_with_faults`] with an optional structured-event journal.
///
/// With `journal: None` this is the exact code path of
/// [`run_engine_with_faults`] — no events are allocated and the output is
/// bit-for-bit identical. With `Some(journal)`, the engine enables event
/// buffering on the scheduler and records every decision point:
/// heartbeats firing, tail re-uses at transmission start, piggyback
/// decisions (drained from the scheduler in causal order), and retry
/// attempts. RRC transitions are appended later from the audited timeline
/// by the scenario layer, which also canonicalizes the journal.
///
/// Profiling spans (see [`etrain_obs::prof`]) wrap the whole run and each
/// scheduler call; they are no-ops unless profiling was enabled
/// process-wide and never influence the output.
///
/// # Panics
///
/// Panics as [`run_engine_with_faults`] does.
#[allow(clippy::too_many_arguments)]
pub fn run_engine_journaled(
    scheduler: &mut dyn Scheduler,
    packets: &[Packet],
    heartbeats: &[Heartbeat],
    bandwidth: &BandwidthTrace,
    radio_params: &RadioParams,
    horizon_s: f64,
    plan: &FaultPlan,
    retry: &RetryPolicy,
    journal: Option<&mut Journal>,
) -> EngineOutput {
    let (output, _) = run_engine_configured(
        scheduler,
        packets,
        heartbeats,
        bandwidth,
        radio_params,
        horizon_s,
        EngineOpts {
            plan,
            retry,
            journal,
            oracle: OracleMode::Off,
            engine: EngineKind::from_env(),
        },
    )
    .expect("the oracle is off, so the audit cannot fail");
    output
}

/// [`run_engine`] under a simulation-oracle mode.
///
/// - [`OracleMode::Off`] returns the raw output with zero audit overhead;
/// - [`OracleMode::Record`] audits the output, adds the tallies to
///   [`oracle::counters`](crate::oracle::counters) and attaches the
///   [`OracleOutcome`];
/// - [`OracleMode::Strict`] does the same but turns the first violation
///   into an error.
///
/// # Errors
///
/// In `Strict` mode, the first [`OracleViolation`] the audit finds.
#[allow(clippy::type_complexity)]
pub fn run_engine_checked(
    scheduler: &mut dyn Scheduler,
    packets: &[Packet],
    heartbeats: &[Heartbeat],
    bandwidth: &BandwidthTrace,
    radio_params: &RadioParams,
    horizon_s: f64,
    mode: OracleMode,
) -> Result<(EngineOutput, Option<OracleOutcome>), OracleViolation> {
    run_engine_with_faults_checked(
        scheduler,
        packets,
        heartbeats,
        bandwidth,
        radio_params,
        horizon_s,
        &FaultPlan::none(),
        &RetryPolicy::default(),
        mode,
    )
}

/// [`run_engine_with_faults`] under a simulation-oracle mode; see
/// [`run_engine_checked`] for the mode semantics.
///
/// # Errors
///
/// In `Strict` mode, the first [`OracleViolation`] the audit finds.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub fn run_engine_with_faults_checked(
    scheduler: &mut dyn Scheduler,
    packets: &[Packet],
    heartbeats: &[Heartbeat],
    bandwidth: &BandwidthTrace,
    radio_params: &RadioParams,
    horizon_s: f64,
    plan: &FaultPlan,
    retry: &RetryPolicy,
    mode: OracleMode,
) -> Result<(EngineOutput, Option<OracleOutcome>), OracleViolation> {
    run_engine_configured(
        scheduler,
        packets,
        heartbeats,
        bandwidth,
        radio_params,
        horizon_s,
        EngineOpts {
            plan,
            retry,
            journal: None,
            oracle: mode,
            engine: EngineKind::from_env(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use etrain_sched::{AppProfile, BaselineScheduler, ETrainConfig, ETrainScheduler};
    use etrain_trace::heartbeats::{synthesize, TrainAppSpec};
    use etrain_trace::packets::CargoWorkload;
    use etrain_trace::CargoAppId;

    fn mk_packets(times: &[f64]) -> Vec<Packet> {
        times
            .iter()
            .enumerate()
            .map(|(i, &t)| Packet {
                id: i as u64,
                app: CargoAppId(0),
                arrival_s: t,
                size_bytes: 5_000,
            })
            .collect()
    }

    fn profiles() -> Vec<AppProfile> {
        AppProfile::paper_trio(60.0)
    }

    #[test]
    fn baseline_transmits_everything_with_zero_delay() {
        let packets = mk_packets(&[10.0, 50.0, 90.0]);
        let mut sched = BaselineScheduler::new(profiles());
        let out = run_engine(
            &mut sched,
            &packets,
            &[],
            &BandwidthTrace::constant(1_000_000.0),
            &RadioParams::galaxy_s4_3g(),
            200.0,
        );
        assert_eq!(out.completed.len(), 3);
        assert_eq!(out.still_deferred, 0);
        for c in &out.completed {
            assert!(c.scheduling_delay_s().abs() < 1e-9);
        }
        // Three isolated transmissions: three full tails.
        let full_tail = RadioParams::galaxy_s4_3g().full_tail_energy_j();
        assert!((out.tail_energy_j - 3.0 * full_tail).abs() < 0.1);
    }

    #[test]
    fn etrain_defers_to_heartbeat() {
        let packets = mk_packets(&[10.0]);
        let heartbeats = synthesize(&[TrainAppSpec::fixed("T", 100.0, 300, 50.0)], 400.0, 1);
        let mut sched = ETrainScheduler::new(
            ETrainConfig {
                theta: 10.0, // high gate: only heartbeats release
                k: None,
                slot_s: 1.0,
            },
            profiles(),
        );
        let out = run_engine(
            &mut sched,
            &packets,
            &heartbeats,
            &BandwidthTrace::constant(1_000_000.0),
            &RadioParams::galaxy_s4_3g(),
            400.0,
        );
        assert_eq!(out.completed.len(), 1);
        let delay = out.completed[0].scheduling_delay_s();
        // Arrived at 10, first heartbeat at 50 → delay ≈ 40 s.
        assert!((delay - 40.0).abs() < 1.5, "delay {delay}");
    }

    #[test]
    fn piggybacking_saves_energy_vs_baseline() {
        let workload = CargoWorkload::paper_default(0.08);
        let packets = workload.generate(3600.0, 11);
        let heartbeats = synthesize(&TrainAppSpec::paper_trio(), 3600.0, 11);
        let bandwidth = BandwidthTrace::constant(800_000.0);
        let radio = RadioParams::galaxy_s4_3g();

        let mut base = BaselineScheduler::new(profiles());
        let out_base = run_engine(&mut base, &packets, &heartbeats, &bandwidth, &radio, 3600.0);

        let mut etr = ETrainScheduler::new(
            ETrainConfig {
                theta: 0.5,
                k: None,
                slot_s: 1.0,
            },
            profiles(),
        );
        let out_etr = run_engine(&mut etr, &packets, &heartbeats, &bandwidth, &radio, 3600.0);

        let base_total = out_base.transmission_energy_j + out_base.tail_energy_j;
        let etr_total = out_etr.transmission_energy_j + out_etr.tail_energy_j;
        assert!(
            etr_total < base_total,
            "eTrain {etr_total} J should beat baseline {base_total} J"
        );
        // Both transmit every heartbeat.
        assert_eq!(out_base.heartbeats_sent, heartbeats.len());
        assert_eq!(out_etr.heartbeats_sent, heartbeats.len());
    }

    #[test]
    fn conservation_across_engine() {
        let workload = CargoWorkload::paper_default(0.10);
        let packets = workload.generate(1800.0, 3);
        let heartbeats = synthesize(&TrainAppSpec::paper_trio(), 1800.0, 3);
        let mut sched = ETrainScheduler::new(ETrainConfig::default(), profiles());
        let out = run_engine(
            &mut sched,
            &packets,
            &heartbeats,
            &BandwidthTrace::constant(500_000.0),
            &RadioParams::galaxy_s4_3g(),
            1800.0,
        );
        assert_eq!(
            out.completed.len() + out.in_flight.len() + out.still_deferred,
            packets.len(),
            "every packet is completed, in flight, or deferred"
        );
        // No duplicates.
        let mut ids: Vec<u64> = out.completed.iter().map(|c| c.packet.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), out.completed.len());
    }

    #[test]
    fn no_packets_no_energy_above_heartbeats() {
        let heartbeats = synthesize(&[TrainAppSpec::qq()], 3600.0, 1);
        let mut sched = BaselineScheduler::new(profiles());
        let out = run_engine(
            &mut sched,
            &[],
            &heartbeats,
            &BandwidthTrace::constant(500_000.0),
            &RadioParams::galaxy_s4_3g(),
            3600.0,
        );
        assert_eq!(out.completed.len(), 0);
        assert_eq!(out.heartbeats_sent, 12);
        // 12 isolated QQ heartbeats: 12 full tails (300 s apart).
        let expected = 12.0 * RadioParams::galaxy_s4_3g().full_tail_energy_j();
        assert!(
            (out.tail_energy_j - expected).abs() < 0.2,
            "{}",
            out.tail_energy_j
        );
    }

    #[test]
    fn horizon_truncates_unfinished_work() {
        // One enormous packet on a slow link cannot finish.
        let packets = vec![Packet {
            id: 0,
            app: CargoAppId(2),
            arrival_s: 5.0,
            size_bytes: 10_000_000,
        }];
        let mut sched = BaselineScheduler::new(profiles());
        let out = run_engine(
            &mut sched,
            &packets,
            &[],
            &BandwidthTrace::constant(8_000.0),
            &RadioParams::galaxy_s4_3g(),
            60.0,
        );
        assert!(out.completed.is_empty());
        assert_eq!(out.in_flight.len(), 1);
        // Busy from t=5 to the horizon.
        assert!((out.busy_time_s - 55.0).abs() < 1e-6);
    }

    #[test]
    fn promotion_delay_stretches_transmissions_from_idle() {
        // 2 s IDLE→DCH promotion: a lone packet's completion shifts by 2 s
        // and the radio stays busy through the promotion.
        let params = RadioParams::builder()
            .promotion_idle_to_dch_s(2.0)
            .build()
            .unwrap();
        let packets = mk_packets(&[10.0]);
        let mut sched = BaselineScheduler::new(profiles());
        let out = run_engine(
            &mut sched,
            &packets,
            &[],
            &BandwidthTrace::constant(1_000_000.0),
            &params,
            100.0,
        );
        assert_eq!(out.completed.len(), 1);
        let expected_transfer = 5_000.0 * 8.0 / 1_000_000.0;
        assert!(
            (out.completed[0].tx_end_s - (10.0 + 2.0 + expected_transfer)).abs() < 1e-9,
            "end {}",
            out.completed[0].tx_end_s
        );
        assert!((out.busy_time_s - (2.0 + expected_transfer)).abs() < 1e-9);
    }

    #[test]
    fn back_to_back_transmissions_skip_the_promotion() {
        // The second packet starts while the radio is still in the DCH
        // tail: no promotion penalty.
        let params = RadioParams::builder()
            .promotion_idle_to_dch_s(2.0)
            .build()
            .unwrap();
        let packets = mk_packets(&[10.0, 12.0]);
        let mut sched = BaselineScheduler::new(profiles());
        let out = run_engine(
            &mut sched,
            &packets,
            &[],
            &BandwidthTrace::constant(1_000_000.0),
            &params,
            100.0,
        );
        let transfer = 5_000.0 * 8.0 / 1_000_000.0;
        // One promotion (first packet) + two transfers.
        assert!((out.busy_time_s - (2.0 + 2.0 * transfer)).abs() < 1e-9);
        assert_eq!(out.promotions, 1);
    }

    #[test]
    fn timeline_reconstruction_matches_online_accounting() {
        // The offline timeline rebuilt from the engine's transmission log
        // must integrate to exactly the energy the online radio accrued —
        // a cross-check between two independent accounting paths.
        let workload = CargoWorkload::paper_default(0.08);
        let packets = workload.generate(1200.0, 9);
        let heartbeats = synthesize(&TrainAppSpec::paper_trio(), 1200.0, 9);
        let mut sched = ETrainScheduler::new(ETrainConfig::default(), profiles());
        let out = run_engine(
            &mut sched,
            &packets,
            &heartbeats,
            &BandwidthTrace::constant(500_000.0),
            &RadioParams::galaxy_s4_3g(),
            1200.0,
        );
        let timeline_energy = out.timeline().extra_energy_j();
        let online_energy = out.transmission_energy_j + out.tail_energy_j;
        assert!(
            (timeline_energy - online_energy).abs() < 1e-6,
            "timeline {timeline_energy} vs online {online_energy}"
        );
        // And the sampled power trace approximates the same total.
        let sampled = out.power_trace(0.1).energy_above_j(20.0);
        assert!((sampled - online_energy).abs() / online_energy < 0.02);
    }

    #[test]
    fn lost_attempt_burns_energy_and_retried_packet_keeps_arrival() {
        // One packet, first attempt always lost, second always delivered.
        let packets = mk_packets(&[10.0]);
        let plan = {
            let mut seed = 0u64;
            // Find a fault seed whose coin loses attempt 1 but not 2.
            loop {
                let p = FaultPlan::seeded(seed).with_loss(0.5);
                if p.loses_transmission(0, 1) && !p.loses_transmission(0, 2) {
                    break p;
                }
                seed += 1;
            }
        };
        let mut sched = BaselineScheduler::new(profiles());
        let out = run_engine_with_faults(
            &mut sched,
            &packets,
            &[],
            &BandwidthTrace::constant(1_000_000.0),
            &RadioParams::galaxy_s4_3g(),
            400.0,
            &plan,
            &RetryPolicy {
                jitter_frac: 0.0,
                ..RetryPolicy::default()
            },
        );
        assert_eq!(out.retries, 1);
        assert_eq!(out.completed.len(), 1);
        assert!(out.abandoned.is_empty());
        let c = &out.completed[0];
        // The re-delivery kept the original arrival: scheduling delay is
        // release − arrival ≈ the 2 s backoff, not zero.
        assert!((c.packet.arrival_s - 10.0).abs() < 1e-9);
        assert!(
            c.scheduling_delay_s() > 1.9,
            "delay {} should include the backoff",
            c.scheduling_delay_s()
        );
        // The failed attempt's energy is charged and broken out.
        assert!(out.wasted_retry_energy_j > 0.0);
        assert!(out.wasted_retry_energy_j < out.transmission_energy_j);
    }

    #[test]
    fn conservation_holds_under_heavy_faults() {
        let workload = CargoWorkload::paper_default(0.10);
        let packets = workload.generate(1800.0, 3);
        let heartbeats = synthesize(&TrainAppSpec::paper_trio(), 1800.0, 3);
        let plan = FaultPlan::seeded(8)
            .with_loss(0.5)
            .with_heartbeat_drops(0.2)
            .with_outage(200.0, 400.0)
            .with_train_death(900.0, 1200.0);
        let mut sched = ETrainScheduler::new(ETrainConfig::default(), profiles());
        let out = run_engine_with_faults(
            &mut sched,
            &packets,
            &heartbeats,
            &BandwidthTrace::constant(500_000.0),
            &RadioParams::galaxy_s4_3g(),
            1800.0,
            &plan,
            &RetryPolicy::default(),
        );
        assert_eq!(
            out.completed.len() + out.abandoned.len() + out.in_flight.len() + out.still_deferred,
            packets.len(),
            "every packet is completed, abandoned, in flight, or deferred"
        );
        // No packet appears in two terminal states.
        let mut ids: Vec<u64> = out
            .completed
            .iter()
            .map(|c| c.packet.id)
            .chain(out.abandoned.iter().map(|a| a.packet.id))
            .chain(out.in_flight.iter().map(|p| p.id))
            .collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "no duplicate terminal states");
        assert!(
            out.heartbeats_sent < heartbeats.len(),
            "drops + death window bite"
        );
    }

    #[test]
    #[should_panic(expected = "invalid retry policy")]
    fn invalid_retry_policy_rejected() {
        let mut sched = BaselineScheduler::new(profiles());
        let _ = run_engine_with_faults(
            &mut sched,
            &[],
            &[],
            &BandwidthTrace::constant(1e6),
            &RadioParams::galaxy_s4_3g(),
            100.0,
            &FaultPlan::none(),
            &RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_packets_rejected() {
        let packets = mk_packets(&[50.0, 10.0]);
        let mut sched = BaselineScheduler::new(profiles());
        let _ = run_engine(
            &mut sched,
            &packets,
            &[],
            &BandwidthTrace::constant(1e6),
            &RadioParams::galaxy_s4_3g(),
            100.0,
        );
    }

    // ---- snapshot/restore ----

    struct Inputs {
        packets: Vec<Packet>,
        heartbeats: Vec<Heartbeat>,
        bandwidth: BandwidthTrace,
        radio: RadioParams,
        plan: FaultPlan,
        retry: RetryPolicy,
        horizon_s: f64,
    }

    fn faulted_inputs() -> Inputs {
        Inputs {
            packets: CargoWorkload::paper_default(0.10).generate(900.0, 5),
            heartbeats: synthesize(&TrainAppSpec::paper_trio(), 900.0, 5),
            bandwidth: BandwidthTrace::constant(400_000.0),
            radio: RadioParams::galaxy_s4_3g(),
            plan: FaultPlan::seeded(17)
                .with_loss(0.3)
                .with_outage(200.0, 260.0),
            retry: RetryPolicy::default(),
            horizon_s: 900.0,
        }
    }

    fn sched() -> ETrainScheduler {
        ETrainScheduler::new(ETrainConfig::default(), profiles())
    }

    fn output_eq(a: &EngineOutput, b: &EngineOutput) {
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.in_flight, b.in_flight);
        assert_eq!(a.abandoned, b.abandoned);
        assert_eq!(a.retries, b.retries);
        assert_eq!(
            a.wasted_retry_energy_j.to_bits(),
            b.wasted_retry_energy_j.to_bits()
        );
        assert_eq!(
            a.transmission_energy_j.to_bits(),
            b.transmission_energy_j.to_bits()
        );
        assert_eq!(a.tail_energy_j.to_bits(), b.tail_energy_j.to_bits());
        assert_eq!(a.busy_time_s.to_bits(), b.busy_time_s.to_bits());
        assert_eq!(a.promotions, b.promotions);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.steps_run, b.steps_run);
        assert_eq!(a.transmissions.len(), b.transmissions.len());
    }

    #[test]
    fn stepwise_engine_matches_batch_run() {
        let inputs = faulted_inputs();
        let mut s1 = sched();
        let batch = run_engine_with_faults(
            &mut s1,
            &inputs.packets,
            &inputs.heartbeats,
            &inputs.bandwidth,
            &inputs.radio,
            inputs.horizon_s,
            &inputs.plan,
            &inputs.retry,
        );
        let mut s2 = sched();
        let mut eng = Engine::new(
            &mut s2,
            &inputs.packets,
            &inputs.heartbeats,
            &inputs.bandwidth,
            &inputs.radio,
            inputs.horizon_s,
            &inputs.plan,
            &inputs.retry,
            None,
        );
        while eng.step() {}
        let stepped = eng.finish();
        output_eq(&batch, &stepped);
    }

    #[test]
    fn snapshot_restore_resumes_bit_for_bit() {
        let inputs = faulted_inputs();
        let mut s1 = sched();
        let full = run_engine_with_faults(
            &mut s1,
            &inputs.packets,
            &inputs.heartbeats,
            &inputs.bandwidth,
            &inputs.radio,
            inputs.horizon_s,
            &inputs.plan,
            &inputs.retry,
        );

        // Run to roughly one third, snapshot, serialize it durably, and
        // resume on a freshly built scheduler.
        let mut s2 = sched();
        let mut eng = Engine::new(
            &mut s2,
            &inputs.packets,
            &inputs.heartbeats,
            &inputs.bandwidth,
            &inputs.radio,
            inputs.horizon_s,
            &inputs.plan,
            &inputs.retry,
            None,
        );
        let stop = full.events_processed / 3;
        while eng.events_processed() < stop && eng.step() {}
        let snap = eng.snapshot();
        drop(eng);
        let json = serde_json::to_string(&snap).unwrap();
        let snap: EngineSnapshot = serde_json::from_str(&json).unwrap();

        let mut s3 = sched();
        let eng = Engine::restore(
            &mut s3,
            &inputs.packets,
            &inputs.heartbeats,
            &inputs.bandwidth,
            &inputs.radio,
            inputs.horizon_s,
            &inputs.plan,
            &inputs.retry,
            &snap,
        )
        .expect("snapshot restores on identical inputs");
        let resumed = eng.run();
        output_eq(&full, &resumed);
    }

    #[test]
    fn restore_rejects_foreign_snapshot() {
        let inputs = faulted_inputs();
        let mut s1 = sched();
        let mut eng = Engine::new(
            &mut s1,
            &inputs.packets,
            &inputs.heartbeats,
            &inputs.bandwidth,
            &inputs.radio,
            inputs.horizon_s,
            &inputs.plan,
            &inputs.retry,
            None,
        );
        for _ in 0..200 {
            eng.step();
        }
        let snap = eng.snapshot();
        drop(eng);

        // Different fault seed → different replayed state.
        let other_plan = FaultPlan::seeded(99)
            .with_loss(0.3)
            .with_outage(200.0, 260.0);
        let mut s2 = sched();
        let err = Engine::restore(
            &mut s2,
            &inputs.packets,
            &inputs.heartbeats,
            &inputs.bandwidth,
            &inputs.radio,
            inputs.horizon_s,
            &other_plan,
            &inputs.retry,
            &snap,
        )
        .err()
        .expect("foreign snapshot must be rejected");
        assert!(
            matches!(
                err,
                SnapshotError::FingerprintMismatch { .. } | SnapshotError::ReplayExhausted { .. }
            ),
            "{err}"
        );

        // Wrong version is rejected before any replay happens.
        let stale = EngineSnapshot {
            version: SNAPSHOT_VERSION + 1,
            ..snap
        };
        let mut s3 = sched();
        let err = Engine::restore(
            &mut s3,
            &inputs.packets,
            &inputs.heartbeats,
            &inputs.bandwidth,
            &inputs.radio,
            inputs.horizon_s,
            &inputs.plan,
            &inputs.retry,
            &stale,
        )
        .err()
        .expect("stale version must be rejected");
        assert_eq!(
            err,
            SnapshotError::VersionMismatch {
                expected: SNAPSHOT_VERSION,
                found: SNAPSHOT_VERSION + 1,
            }
        );
    }

    // ---- event kernel ----

    #[test]
    fn engine_kind_parses_all_spellings() {
        assert_eq!("slot".parse::<EngineKind>().unwrap(), EngineKind::Slot);
        assert_eq!("Event".parse::<EngineKind>().unwrap(), EngineKind::Event);
        assert_eq!(" EVENT ".parse::<EngineKind>().unwrap(), EngineKind::Event);
        assert_eq!("off".parse::<EngineKind>().unwrap(), EngineKind::Slot);
        assert_eq!("on".parse::<EngineKind>().unwrap(), EngineKind::Event);
        assert!("slots".parse::<EngineKind>().is_err());
    }

    #[test]
    fn engine_kind_default_is_slot() {
        assert_eq!(EngineKind::default(), EngineKind::Slot);
    }

    #[test]
    fn engine_kind_display_round_trips() {
        for kind in [EngineKind::Slot, EngineKind::Event] {
            assert_eq!(kind.to_string().parse::<EngineKind>().unwrap(), kind);
        }
    }

    fn run_with_kind(inputs: &Inputs, kind: EngineKind) -> EngineOutput {
        let mut s = sched();
        Engine::new(
            &mut s,
            &inputs.packets,
            &inputs.heartbeats,
            &inputs.bandwidth,
            &inputs.radio,
            inputs.horizon_s,
            &inputs.plan,
            &inputs.retry,
            None,
        )
        .with_kind(kind)
        .run()
    }

    #[test]
    fn event_kernel_matches_slot_kernel_on_faulted_inputs() {
        let inputs = faulted_inputs();
        let slot = run_with_kind(&inputs, EngineKind::Slot);
        let event = run_with_kind(&inputs, EngineKind::Event);
        output_eq(&slot, &event);
    }

    #[test]
    fn event_kernel_batches_quiescent_slots_into_fewer_steps() {
        // A sparse standby run: three packets in an hour leave long
        // quiescent stretches the event kernel must retire in bulk.
        let packets = mk_packets(&[10.0, 1000.0, 2500.0]);
        let heartbeats = synthesize(&[TrainAppSpec::qq()], 3600.0, 1);
        let bandwidth = BandwidthTrace::constant(500_000.0);
        let radio = RadioParams::galaxy_s4_3g();
        let plan = FaultPlan::none();
        let retry = RetryPolicy::default();

        let calls = |kind: EngineKind| {
            let mut s = BaselineScheduler::new(profiles());
            let mut eng = Engine::new(
                &mut s,
                &packets,
                &heartbeats,
                &bandwidth,
                &radio,
                3600.0,
                &plan,
                &retry,
                None,
            )
            .with_kind(kind);
            let mut steps = 0u64;
            while eng.step() {
                steps += 1;
            }
            (steps, eng.finish())
        };
        let (slot_calls, slot_out) = calls(EngineKind::Slot);
        let (event_calls, event_out) = calls(EngineKind::Event);
        output_eq(&slot_out, &event_out);
        assert_eq!(slot_calls, slot_out.events_processed);
        assert!(
            event_calls * 10 < slot_calls,
            "event kernel made {event_calls} step calls vs {slot_calls} — batching is broken"
        );
    }

    #[test]
    fn event_kernel_snapshot_restores_bit_for_bit() {
        let inputs = faulted_inputs();
        let full = run_with_kind(&inputs, EngineKind::Event);

        let mut s1 = sched();
        let mut eng = Engine::new(
            &mut s1,
            &inputs.packets,
            &inputs.heartbeats,
            &inputs.bandwidth,
            &inputs.radio,
            inputs.horizon_s,
            &inputs.plan,
            &inputs.retry,
            None,
        )
        .with_kind(EngineKind::Event);
        let stop = full.events_processed / 3;
        while eng.events_processed() < stop && eng.step() {}
        let snap = eng.snapshot();
        drop(eng);
        assert_eq!(snap.engine, EngineKind::Event);
        let json = serde_json::to_string(&snap).unwrap();
        let snap: EngineSnapshot = serde_json::from_str(&json).unwrap();

        let mut s2 = sched();
        let eng = Engine::restore(
            &mut s2,
            &inputs.packets,
            &inputs.heartbeats,
            &inputs.bandwidth,
            &inputs.radio,
            inputs.horizon_s,
            &inputs.plan,
            &inputs.retry,
            &snap,
        )
        .expect("event-kernel snapshot restores on identical inputs");
        assert_eq!(eng.kind(), EngineKind::Event);
        let resumed = eng.run();
        output_eq(&full, &resumed);
    }

    #[test]
    fn legacy_snapshot_json_defaults_to_slot_kernel() {
        // Pre-event-kernel snapshots used the `slots_run` field name and
        // had no `engine` field; both must still deserialize.
        let json = r#"{"version":1,"taken_at_s":4.5,"events_processed":12,
                       "slots_run":4,"journal_events":0,"fingerprint":99}"#;
        let snap: EngineSnapshot = serde_json::from_str(json).unwrap();
        assert_eq!(snap.steps_run, 4);
        assert_eq!(snap.engine, EngineKind::Slot);
    }
}
