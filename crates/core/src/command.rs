//! Command sourcing for the deterministic core: every state-changing
//! entry point of [`ETrainCore`] expressed as a serializable value.
//!
//! The live service (`etrain-svc`) persists a [`CoreCommand`] to its
//! write-ahead log *before* applying it, and recovery replays the logged
//! stream through [`ETrainCore::apply`] into a fresh core. Because the
//! core is sans-IO and driven entirely by explicit timestamps, replaying
//! the same command sequence reconstructs the same state bit for bit —
//! the same property the simulator's kill/resume harness relies on, now
//! available to a real daemon.

use etrain_sched::AppProfile;
use etrain_trace::{CargoAppId, TrainAppId};
use serde::{Deserialize, Serialize};

use crate::core_impl::ETrainCore;
use crate::error::CoreError;
use crate::request::{
    Admission, RequestId, RetryVerdict, TransmitDecision, TransmitRequest, TxResult,
};

/// One state-changing call into [`ETrainCore`], as replayable data.
///
/// The variants map one-to-one onto the core's public mutating API;
/// [`ETrainCore::apply`] dispatches them. Commands serialize through
/// serde (the same machinery as the `etrain-obs` event journal), which is
/// what the `etrain-svc` write-ahead log stores on disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoreCommand {
    /// [`ETrainCore::register_train`].
    RegisterTrain {
        /// The train app's name.
        name: String,
    },
    /// [`ETrainCore::register_cargo`].
    RegisterCargo {
        /// The cargo app's delay-cost profile.
        profile: AppProfile,
    },
    /// [`ETrainCore::submit`].
    Submit {
        /// The submitting cargo app.
        app: CargoAppId,
        /// The request metadata.
        request: TransmitRequest,
        /// Submission time in seconds.
        now_s: f64,
    },
    /// [`ETrainCore::on_heartbeat`].
    Heartbeat {
        /// The train whose heartbeat departed.
        train: TrainAppId,
        /// Departure time in seconds.
        now_s: f64,
    },
    /// [`ETrainCore::tick`].
    Tick {
        /// Slot time in seconds.
        now_s: f64,
    },
    /// [`ETrainCore::report_result`].
    ReportResult {
        /// The decided request being reported.
        request: RequestId,
        /// The transmission outcome.
        result: TxResult,
        /// Report time in seconds.
        now_s: f64,
    },
    /// [`ETrainCore::cancel`].
    Cancel {
        /// The pending request to withdraw.
        request: RequestId,
    },
    /// [`ETrainCore::cancel_backoff`].
    CancelBackoff {
        /// The backing-off request to withdraw.
        request: RequestId,
    },
    /// [`ETrainCore::drain`].
    Drain,
}

impl CoreCommand {
    /// The explicit timestamp the command carries, if any (registration,
    /// cancellation and drain act at the core's current clock).
    pub fn time_s(&self) -> Option<f64> {
        match self {
            CoreCommand::Submit { now_s, .. }
            | CoreCommand::Heartbeat { now_s, .. }
            | CoreCommand::Tick { now_s }
            | CoreCommand::ReportResult { now_s, .. } => Some(*now_s),
            CoreCommand::RegisterTrain { .. }
            | CoreCommand::RegisterCargo { .. }
            | CoreCommand::Cancel { .. }
            | CoreCommand::CancelBackoff { .. }
            | CoreCommand::Drain => None,
        }
    }

    /// Stable machine-readable name of the variant, for logs and labels.
    pub fn kind(&self) -> &'static str {
        match self {
            CoreCommand::RegisterTrain { .. } => "register_train",
            CoreCommand::RegisterCargo { .. } => "register_cargo",
            CoreCommand::Submit { .. } => "submit",
            CoreCommand::Heartbeat { .. } => "heartbeat",
            CoreCommand::Tick { .. } => "tick",
            CoreCommand::ReportResult { .. } => "report_result",
            CoreCommand::Cancel { .. } => "cancel",
            CoreCommand::CancelBackoff { .. } => "cancel_backoff",
            CoreCommand::Drain => "drain",
        }
    }
}

/// What applying one [`CoreCommand`] produced — the union of the return
/// types of the core's mutating API.
#[derive(Debug, Clone, PartialEq)]
pub enum CommandOutcome {
    /// A train registered.
    TrainRegistered {
        /// Its id.
        train: TrainAppId,
    },
    /// A cargo app registered.
    CargoRegistered {
        /// Its id.
        app: CargoAppId,
    },
    /// A submission resolved to a typed admission outcome.
    Admitted {
        /// The admission outcome.
        admission: Admission,
    },
    /// A heartbeat or tick slot ran.
    Decisions {
        /// The decisions the slot released, in release order.
        decisions: Vec<TransmitDecision>,
    },
    /// A transmission outcome was reported.
    Verdict {
        /// The retry verdict.
        verdict: RetryVerdict,
    },
    /// A cancellation resolved.
    Cancelled {
        /// Whether the request was actually withdrawn.
        withdrawn: bool,
    },
    /// The core drained all held requests.
    Drained {
        /// The immediate decisions for everything that was held.
        decisions: Vec<TransmitDecision>,
    },
}

impl CommandOutcome {
    /// The decisions the command released, when it released any.
    pub fn decisions(&self) -> &[TransmitDecision] {
        match self {
            CommandOutcome::Decisions { decisions } | CommandOutcome::Drained { decisions } => {
                decisions
            }
            _ => &[],
        }
    }
}

impl ETrainCore {
    /// Applies one replayable [`CoreCommand`], dispatching to the
    /// corresponding public method. Recovery replays a logged command
    /// stream through this; the live service routes every mutation
    /// through it too, so the log and the in-memory state can never
    /// diverge structurally.
    ///
    /// # Errors
    ///
    /// Exactly the errors of the underlying method (unknown apps,
    /// non-monotone timestamps, unknown requests).
    pub fn apply(&mut self, command: &CoreCommand) -> Result<CommandOutcome, CoreError> {
        match command {
            CoreCommand::RegisterTrain { name } => Ok(CommandOutcome::TrainRegistered {
                train: self.register_train(name.clone()),
            }),
            CoreCommand::RegisterCargo { profile } => Ok(CommandOutcome::CargoRegistered {
                app: self.register_cargo(profile.clone()),
            }),
            CoreCommand::Submit {
                app,
                request,
                now_s,
            } => Ok(CommandOutcome::Admitted {
                admission: self.submit(*app, *request, *now_s)?,
            }),
            CoreCommand::Heartbeat { train, now_s } => Ok(CommandOutcome::Decisions {
                decisions: self.on_heartbeat(*train, *now_s)?,
            }),
            CoreCommand::Tick { now_s } => Ok(CommandOutcome::Decisions {
                decisions: self.tick(*now_s)?,
            }),
            CoreCommand::ReportResult {
                request,
                result,
                now_s,
            } => Ok(CommandOutcome::Verdict {
                verdict: self.report_result(*request, *result, *now_s)?,
            }),
            CoreCommand::Cancel { request } => Ok(CommandOutcome::Cancelled {
                withdrawn: self.cancel(*request),
            }),
            CoreCommand::CancelBackoff { request } => Ok(CommandOutcome::Cancelled {
                withdrawn: self.cancel_backoff(*request),
            }),
            CoreCommand::Drain => Ok(CommandOutcome::Drained {
                decisions: self.drain(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_impl::CoreConfig;
    use etrain_sched::CostProfile;

    fn commands() -> Vec<CoreCommand> {
        vec![
            CoreCommand::RegisterTrain {
                name: "WeChat".into(),
            },
            CoreCommand::RegisterCargo {
                profile: AppProfile::new("Mail", CostProfile::mail(300.0)),
            },
            CoreCommand::Heartbeat {
                train: TrainAppId(0),
                now_s: 0.0,
            },
            CoreCommand::Submit {
                app: CargoAppId(0),
                request: TransmitRequest::upload(5_000),
                now_s: 10.0,
            },
            CoreCommand::Tick { now_s: 11.0 },
            CoreCommand::Heartbeat {
                train: TrainAppId(0),
                now_s: 270.0,
            },
            CoreCommand::ReportResult {
                request: RequestId(0),
                result: TxResult::Failed,
                now_s: 271.0,
            },
            CoreCommand::Drain,
        ]
    }

    fn theta_config() -> CoreConfig {
        CoreConfig {
            theta: 5.0,
            ..CoreConfig::default()
        }
    }

    #[test]
    fn apply_matches_direct_calls() {
        let mut direct = ETrainCore::new(theta_config());
        let train = direct.register_train("WeChat");
        let app = direct.register_cargo(AppProfile::new("Mail", CostProfile::mail(300.0)));
        direct.on_heartbeat(train, 0.0).unwrap();
        direct
            .submit(app, TransmitRequest::upload(5_000), 10.0)
            .unwrap();
        direct.tick(11.0).unwrap();
        direct.on_heartbeat(train, 270.0).unwrap();
        direct
            .report_result(RequestId(0), TxResult::Failed, 271.0)
            .unwrap();
        direct.drain();

        let mut replayed = ETrainCore::new(theta_config());
        for command in commands() {
            replayed.apply(&command).unwrap();
        }
        assert_eq!(replayed.stats(), direct.stats());
        assert_eq!(replayed.fingerprint(), direct.fingerprint());
    }

    #[test]
    fn replay_is_deterministic_and_fingerprint_sensitive() {
        let run = |cmds: &[CoreCommand]| {
            let mut core = ETrainCore::new(theta_config());
            for command in cmds {
                core.apply(command).unwrap();
            }
            core.fingerprint()
        };
        let all = commands();
        assert_eq!(run(&all), run(&all), "replay must be deterministic");
        let shorter = &all[..all.len() - 2];
        assert_ne!(
            run(&all),
            run(shorter),
            "dropping commands must change the fingerprint"
        );
    }

    #[test]
    fn commands_round_trip_through_json() {
        for command in commands() {
            let json = serde_json::to_string(&command).unwrap();
            let back: CoreCommand = serde_json::from_str(&json).unwrap();
            assert_eq!(back, command, "{json}");
        }
    }

    #[test]
    fn times_and_kinds_are_exposed() {
        let all = commands();
        assert_eq!(all[0].time_s(), None);
        assert_eq!(all[3].time_s(), Some(10.0));
        assert_eq!(all[3].kind(), "submit");
        assert_eq!(all[7].kind(), "drain");
    }

    #[test]
    fn apply_propagates_core_errors() {
        let mut core = ETrainCore::new(theta_config());
        let err = core
            .apply(&CoreCommand::Heartbeat {
                train: TrainAppId(3),
                now_s: 0.0,
            })
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownTrainApp { .. }));
    }
}
