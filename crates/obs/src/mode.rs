//! The `ETRAIN_OBS` knob: how much observability a run records.

use serde::{Deserialize, Serialize};

/// Environment variable that selects the observability mode for binaries
/// and tests that do not set one programmatically (mirrors
/// `ETRAIN_ORACLE`).
pub const OBS_ENV: &str = "ETRAIN_OBS";

/// How much the observability layer records during a run.
///
/// The default is [`ObsMode::Off`]: no events are allocated and the
/// simulation output is bit-for-bit identical to a run without the
/// observability layer compiled in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ObsMode {
    /// Record nothing (zero-cost; the default).
    #[default]
    Off,
    /// Record events into a bounded in-memory ring per run; old events
    /// are evicted once the ring is full.
    Ring,
    /// Record every event, exportable as JSON Lines.
    Jsonl,
}

impl ObsMode {
    /// Reads the mode from the [`OBS_ENV`] environment variable.
    ///
    /// Unset, empty, or unparseable values fall back to [`ObsMode::Off`]
    /// so that stray environment state can never change results.
    pub fn from_env() -> Self {
        std::env::var(OBS_ENV)
            .ok()
            .and_then(|raw| raw.trim().to_ascii_lowercase().parse().ok())
            .unwrap_or(ObsMode::Off)
    }

    /// Whether any recording happens at all.
    pub fn is_enabled(self) -> bool {
        self != ObsMode::Off
    }
}

impl std::str::FromStr for ObsMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "false" | "none" => Ok(ObsMode::Off),
            "ring" => Ok(ObsMode::Ring),
            "jsonl" | "on" | "1" | "true" => Ok(ObsMode::Jsonl),
            other => Err(format!(
                "unknown {OBS_ENV} mode {other:?} (expected off, ring, or jsonl)"
            )),
        }
    }
}

impl std::fmt::Display for ObsMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsMode::Off => write!(f, "off"),
            ObsMode::Ring => write!(f, "ring"),
            ObsMode::Jsonl => write!(f, "jsonl"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_spellings() {
        assert_eq!("off".parse::<ObsMode>().unwrap(), ObsMode::Off);
        assert_eq!("Ring".parse::<ObsMode>().unwrap(), ObsMode::Ring);
        assert_eq!(" JSONL ".parse::<ObsMode>().unwrap(), ObsMode::Jsonl);
        assert_eq!("on".parse::<ObsMode>().unwrap(), ObsMode::Jsonl);
        assert!("journal".parse::<ObsMode>().is_err());
    }

    #[test]
    fn default_is_off() {
        assert_eq!(ObsMode::default(), ObsMode::Off);
        assert!(!ObsMode::Off.is_enabled());
        assert!(ObsMode::Ring.is_enabled());
        assert!(ObsMode::Jsonl.is_enabled());
    }

    #[test]
    fn display_round_trips() {
        for mode in [ObsMode::Off, ObsMode::Ring, ObsMode::Jsonl] {
            assert_eq!(mode.to_string().parse::<ObsMode>().unwrap(), mode);
        }
    }
}
