//! Head-to-head comparison of the four scheduling strategies the paper
//! evaluates (Sec. VI-C): Baseline, eTrain (Algorithm 1), PerES and eTime,
//! on the same 2-hour workload and bandwidth trace.
//!
//! ```text
//! cargo run --release --example algorithm_comparison
//! ```

use etrain::sim::{Scenario, SchedulerKind, Table};

fn main() {
    let base = Scenario::paper_default().duration_secs(7200).seed(17);

    let contenders = [
        SchedulerKind::Baseline,
        SchedulerKind::ETrain {
            theta: 4.0,
            k: None,
        },
        SchedulerKind::PerEs { omega: 0.5 },
        SchedulerKind::ETime { v_bytes: 20_000.0 },
    ];

    let mut table = Table::new(
        "2-hour comparison at lambda = 0.08 pkt/s",
        &[
            "algorithm",
            "energy_j",
            "tail_j",
            "delay_s",
            "violations",
            "tail_share",
        ],
    );
    for kind in contenders {
        let r = base.clone().scheduler(kind).run();
        table.push_row_strings(vec![
            r.scheduler.clone(),
            format!("{:.1}", r.extra_energy_j),
            format!("{:.1}", r.tail_energy_j),
            format!("{:.1}", r.normalized_delay_s),
            format!("{:.1}%", r.deadline_violation_ratio * 100.0),
            format!("{:.0}%", r.tail_fraction() * 100.0),
        ]);
    }
    println!("{table}");
    println!(
        "Note: each algorithm's knob shifts its energy-delay point; run\n\
         `cargo run -p etrain-bench --release --bin fig8a` for full E-D curves."
    );
}
