//! Per-app heartbeat cycle detection and prediction.

/// The cycle law a [`CycleDetector`] inferred from observed heartbeats.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectedPattern {
    /// A stable constant cycle (all measured IM apps — paper Table 1).
    Fixed {
        /// Estimated cycle length in seconds (median of observed gaps).
        cycle_s: f64,
        /// Fraction of gaps within tolerance of the estimate, in `[0, 1]`.
        confidence: f64,
    },
    /// An adaptive cycle that steps through increasing levels (the NetEase
    /// news app doubles after every 6 beats — paper Fig. 3(d)).
    Adaptive {
        /// The cycle levels observed so far, in seconds, ascending.
        levels_s: Vec<f64>,
        /// The level currently in force, in seconds.
        current_level_s: f64,
        /// Estimated number of beats sent per level (0 if undetermined).
        beats_per_level: usize,
    },
    /// Not enough observations, or the gaps fit no supported law.
    Unknown,
}

/// Relative tolerance used to decide whether two gaps belong to the same
/// cycle level (covers transmission jitter and scheduling noise).
const GAP_TOLERANCE: f64 = 0.08;

/// Minimum number of observations before any pattern is reported.
const MIN_OBSERVATIONS: usize = 3;

/// Detects a single train app's heartbeat cycle from raw transmission
/// timestamps — the simulation-side substitute for the paper's Xposed hook.
///
/// The detector keeps a bounded history and re-estimates on demand:
///
/// - if the observed gaps agree (within a relative tolerance) the pattern
///   is [`DetectedPattern::Fixed`] with the *median* gap — medians make the
///   estimate robust to outliers from delayed heartbeats;
/// - if the gaps form non-decreasing plateaus the pattern is
///   [`DetectedPattern::Adaptive`] and the run length of completed plateaus
///   estimates `beats_per_level`;
/// - otherwise it is [`DetectedPattern::Unknown`] and prediction falls back
///   to the last observed gap.
#[derive(Debug, Clone)]
pub struct CycleDetector {
    times_s: Vec<f64>,
    max_history: usize,
}

impl Default for CycleDetector {
    fn default() -> Self {
        CycleDetector::new()
    }
}

impl CycleDetector {
    /// Creates a detector with the default history bound (64 heartbeats —
    /// more than 5 hours of WeChat heartbeats).
    pub fn new() -> Self {
        CycleDetector {
            times_s: Vec::new(),
            max_history: 64,
        }
    }

    /// Creates a detector keeping at most `max_history` observations.
    ///
    /// # Panics
    ///
    /// Panics if `max_history < 2` (at least one gap is needed).
    pub fn with_history(max_history: usize) -> Self {
        assert!(
            max_history >= 2,
            "history must hold at least two observations"
        );
        CycleDetector {
            times_s: Vec::new(),
            max_history,
        }
    }

    /// Records a heartbeat transmission at `time_s`.
    ///
    /// Out-of-order observations (earlier than the last recorded one) are
    /// inserted in order; duplicates within 1 ms are ignored.
    pub fn observe(&mut self, time_s: f64) {
        match self
            .times_s
            .binary_search_by(|probe| probe.total_cmp(&time_s))
        {
            Ok(_) => {}
            Err(pos) => {
                let dup_before = pos > 0 && (time_s - self.times_s[pos - 1]).abs() < 1e-3;
                let dup_after =
                    pos < self.times_s.len() && (self.times_s[pos] - time_s).abs() < 1e-3;
                if !dup_before && !dup_after {
                    self.times_s.insert(pos, time_s);
                }
            }
        }
        if self.times_s.len() > self.max_history {
            let excess = self.times_s.len() - self.max_history;
            self.times_s.drain(..excess);
        }
    }

    /// Number of recorded observations.
    pub fn observation_count(&self) -> usize {
        self.times_s.len()
    }

    /// Timestamp of the most recent observation, if any.
    pub fn last_observation_s(&self) -> Option<f64> {
        self.times_s.last().copied()
    }

    /// The gaps between consecutive observations, in seconds.
    pub fn gaps_s(&self) -> Vec<f64> {
        self.times_s.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Infers the cycle pattern from the recorded observations.
    pub fn detect(&self) -> DetectedPattern {
        if self.times_s.len() < MIN_OBSERVATIONS {
            return DetectedPattern::Unknown;
        }
        let gaps = self.gaps_s();
        let median = median(&gaps);
        if median <= 0.0 {
            return DetectedPattern::Unknown;
        }
        let within = gaps
            .iter()
            .filter(|&&g| (g - median).abs() / median <= GAP_TOLERANCE)
            .count();
        let confidence = within as f64 / gaps.len() as f64;
        // A single delayed heartbeat perturbs *two* adjacent gaps, so even
        // one outlier in six gaps leaves only 2/3 agreement; accept a
        // strict majority.
        if confidence >= 0.6 {
            return DetectedPattern::Fixed {
                cycle_s: median,
                confidence,
            };
        }
        if let Some(adaptive) = self.detect_adaptive(&gaps) {
            return adaptive;
        }
        DetectedPattern::Unknown
    }

    /// Detects non-decreasing plateau structure (adaptive cycles).
    fn detect_adaptive(&self, gaps: &[f64]) -> Option<DetectedPattern> {
        if gaps.len() < 3 {
            return None;
        }
        // Split the gap sequence into runs of equal level.
        let mut runs: Vec<(f64, usize)> = Vec::new(); // (level estimate, count)
        for &gap in gaps {
            match runs.last_mut() {
                Some((level, count)) if (gap - *level).abs() / *level <= GAP_TOLERANCE => {
                    // Refine the level estimate with a running mean.
                    *level = (*level * *count as f64 + gap) / (*count as f64 + 1.0);
                    *count += 1;
                }
                _ => runs.push((gap, 1)),
            }
        }
        if runs.len() < 2 {
            return None;
        }
        // Levels must strictly increase to qualify as adaptive.
        if !runs
            .windows(2)
            .all(|w| w[1].0 > w[0].0 * (1.0 + GAP_TOLERANCE))
        {
            return None;
        }
        // Completed runs (all but the last) estimate beats per level.
        // The count of gaps within one level understates beats by nothing:
        // a level of b beats produces b gaps at that level except the first
        // level, which produces b-1 gaps (its first beat has no predecessor).
        let completed: Vec<usize> = runs[..runs.len() - 1].iter().map(|&(_, c)| c).collect();
        let beats_per_level = mode(&completed).unwrap_or(0);
        Some(DetectedPattern::Adaptive {
            levels_s: runs.iter().map(|&(level, _)| level).collect(),
            current_level_s: runs.last().map(|&(level, _)| level).unwrap_or(0.0),
            beats_per_level,
        })
    }

    /// Predicts the next heartbeat departure time, if at least two
    /// observations exist.
    ///
    /// Fixed patterns extrapolate from the last observation by the detected
    /// cycle; adaptive and unknown patterns extrapolate by the last observed
    /// gap (conservative: the true adaptive gap is never shorter, so the
    /// prediction never *misses* a train — it at worst announces one early).
    pub fn predict_next(&self) -> Option<f64> {
        let last = self.last_observation_s()?;
        let gaps = self.gaps_s();
        if gaps.is_empty() {
            return None;
        }
        let step = match self.detect() {
            DetectedPattern::Fixed { cycle_s, .. } => cycle_s,
            DetectedPattern::Adaptive {
                current_level_s, ..
            } => current_level_s,
            DetectedPattern::Unknown => *gaps.last().expect("gaps checked non-empty"),
        };
        Some(last + step)
    }

    /// Predicts all departures in `(after_s, until_s]`.
    ///
    /// Fixed cycles are rolled forward; adaptive and unknown patterns
    /// repeat their current step (the scheduler re-predicts after every
    /// real observation, so the error never compounds).
    pub fn predict_until(&self, after_s: f64, until_s: f64) -> Vec<f64> {
        let Some(mut next) = self.predict_next() else {
            return Vec::new();
        };
        let step = match self.detect() {
            DetectedPattern::Fixed { cycle_s, .. } => cycle_s,
            DetectedPattern::Adaptive {
                current_level_s, ..
            } => current_level_s,
            DetectedPattern::Unknown => match self.gaps_s().last() {
                Some(&gap) => gap,
                None => return Vec::new(),
            },
        };
        if step <= 0.0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        while next <= until_s {
            if next > after_s {
                out.push(next);
            }
            next += step;
        }
        out
    }
}

fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

fn mode(values: &[usize]) -> Option<usize> {
    let mut counts = std::collections::HashMap::new();
    for &v in values {
        *counts.entry(v).or_insert(0usize) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(value, count)| (count, value))
        .map(|(value, _)| value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(times: &[f64]) -> CycleDetector {
        let mut d = CycleDetector::new();
        for &t in times {
            d.observe(t);
        }
        d
    }

    #[test]
    fn too_few_observations_is_unknown() {
        assert_eq!(feed(&[0.0, 300.0]).detect(), DetectedPattern::Unknown);
    }

    #[test]
    fn fixed_cycle_detected_exactly() {
        let d = feed(&[0.0, 300.0, 600.0, 900.0, 1200.0]);
        match d.detect() {
            DetectedPattern::Fixed {
                cycle_s,
                confidence,
            } => {
                assert!((cycle_s - 300.0).abs() < 1e-9);
                assert_eq!(confidence, 1.0);
            }
            other => panic!("expected fixed, got {other:?}"),
        }
    }

    #[test]
    fn fixed_cycle_robust_to_jitter() {
        // ±5 s jitter on a 270 s cycle.
        let d = feed(&[0.0, 272.0, 538.0, 812.0, 1079.0, 1351.0]);
        match d.detect() {
            DetectedPattern::Fixed { cycle_s, .. } => {
                assert!((cycle_s - 270.0).abs() < 10.0, "estimated {cycle_s}");
            }
            other => panic!("expected fixed, got {other:?}"),
        }
    }

    #[test]
    fn fixed_cycle_robust_to_one_outlier() {
        // One heartbeat delayed by a minute; median survives.
        let d = feed(&[0.0, 300.0, 660.0, 900.0, 1200.0, 1500.0, 1800.0]);
        match d.detect() {
            DetectedPattern::Fixed {
                cycle_s,
                confidence,
            } => {
                assert!((cycle_s - 300.0).abs() < 15.0);
                assert!(confidence < 1.0);
            }
            other => panic!("expected fixed, got {other:?}"),
        }
    }

    #[test]
    fn netease_doubling_detected_as_adaptive() {
        // 60 s × 6 beats, then 120 s × 6, then 240 s...
        let mut times = Vec::new();
        let mut t = 0.0;
        for level in 0..3 {
            let cycle = 60.0 * 2f64.powi(level);
            for _ in 0..6 {
                times.push(t);
                t += cycle;
            }
        }
        let d = feed(&times);
        match d.detect() {
            DetectedPattern::Adaptive {
                levels_s,
                current_level_s,
                beats_per_level,
            } => {
                assert!(levels_s.len() >= 2);
                assert!((levels_s[0] - 60.0).abs() < 5.0);
                assert!((current_level_s - 240.0).abs() < 15.0);
                assert_eq!(beats_per_level, 6);
            }
            other => panic!("expected adaptive, got {other:?}"),
        }
    }

    #[test]
    fn random_gaps_are_unknown() {
        let d = feed(&[0.0, 17.0, 300.0, 310.0, 800.0]);
        assert_eq!(d.detect(), DetectedPattern::Unknown);
    }

    #[test]
    fn decreasing_gaps_are_not_adaptive() {
        let d = feed(&[0.0, 480.0, 720.0, 840.0, 900.0]);
        assert_eq!(d.detect(), DetectedPattern::Unknown);
    }

    #[test]
    fn prediction_extrapolates_fixed_cycle() {
        let d = feed(&[10.0, 310.0, 610.0, 910.0]);
        assert!((d.predict_next().unwrap() - 1210.0).abs() < 1.0);
        let horizon = d.predict_until(910.0, 2000.0);
        assert_eq!(horizon.len(), 3); // 1210, 1510, 1810
        assert!((horizon[2] - 1810.0).abs() < 1.0);
    }

    #[test]
    fn prediction_for_adaptive_uses_current_level() {
        let mut times = Vec::new();
        let mut t = 0.0;
        for level in 0..2 {
            let cycle = 60.0 * 2f64.powi(level);
            for _ in 0..6 {
                times.push(t);
                t += cycle;
            }
        }
        let d = feed(&times);
        let last = *times.last().unwrap();
        let next = d.predict_next().unwrap();
        assert!((next - (last + 120.0)).abs() < 10.0);
    }

    #[test]
    fn prediction_without_observations_is_none() {
        let d = CycleDetector::new();
        assert_eq!(d.predict_next(), None);
        assert!(d.predict_until(0.0, 1000.0).is_empty());
    }

    #[test]
    fn out_of_order_and_duplicate_observations() {
        let mut d = CycleDetector::new();
        d.observe(600.0);
        d.observe(0.0);
        d.observe(300.0);
        d.observe(300.0); // exact duplicate
        d.observe(300.0005); // within 1 ms
        assert_eq!(d.observation_count(), 3);
        assert_eq!(d.gaps_s(), vec![300.0, 300.0]);
    }

    #[test]
    fn history_is_bounded() {
        let mut d = CycleDetector::with_history(4);
        for i in 0..100 {
            d.observe(i as f64 * 240.0);
        }
        assert_eq!(d.observation_count(), 4);
        assert_eq!(d.last_observation_s(), Some(99.0 * 240.0));
    }

    #[test]
    fn median_and_mode_helpers() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(mode(&[6, 6, 5]), Some(6));
        assert_eq!(mode(&[]), None);
    }
}
