//! Aggregated fleet metrics: the mergeable per-shard tallies and the
//! serializable population snapshot behind `BENCH_fleet.json`.
//!
//! A fleet run shards 10⁵–10⁶ devices across workers. Determinism is the
//! non-negotiable part: floating-point addition is association-sensitive,
//! so summing within shards and then merging the partial sums would give a
//! result that depends on the shard partition. The fleet runner therefore
//! does **not** build its canonical tally from per-shard partials —
//! workers return per-device *columns*, the coordinator reassembles them
//! by shard index, and [`FleetTally`] is folded serially over the
//! reassembled columns in device order. That fold is identical for 1 and
//! N workers by construction (the journal merge in this crate achieves
//! serial/parallel identity the same way: canonical order first, fold
//! second).
//!
//! [`FleetTally::merge`] still exists for aggregation where the partition
//! *is* the definition — e.g. summing fixed per-class tallies into a fleet
//! overview for display. Its integer fields and extrema are exact under
//! any partition; its `f64` sums are exact only over the partial sums it
//! is given.
//!
//! The percentile fields of [`ClassSnapshot`] are *not* mergeable — they
//! are computed once, at the end, from the fleet's column store (see the
//! fleet crate); this module only defines the serializable shape.

use serde::{Deserialize, Serialize};

/// Mergeable aggregate of one set of devices (a shard, a class, or the
/// whole fleet): pure sums, counts and extrema, folded in device order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetTally {
    /// Devices folded into this tally.
    pub devices: u64,
    /// Cargo packets completed across those devices.
    pub packets_completed: u64,
    /// Cargo packets unfinished at each device's horizon.
    pub packets_unfinished: u64,
    /// Heartbeats transmitted across those devices.
    pub heartbeats_sent: u64,
    /// Sum of per-device radio energy above idle (transmission + tail), J.
    pub extra_energy_j: f64,
    /// Sum of per-device total energy (extra + idle baseline), J.
    pub total_energy_j: f64,
    /// Sum of per-device normalized delays, in seconds (divide by
    /// `devices` for the population mean of the per-device means).
    pub delay_sum_s: f64,
    /// Smallest per-device extra energy seen, J (`+∞` when empty).
    pub min_extra_j: f64,
    /// Largest per-device extra energy seen, J (`-∞` when empty).
    pub max_extra_j: f64,
}

impl FleetTally {
    /// The empty tally (identity of [`FleetTally::merge`]).
    pub fn empty() -> FleetTally {
        FleetTally {
            devices: 0,
            packets_completed: 0,
            packets_unfinished: 0,
            heartbeats_sent: 0,
            extra_energy_j: 0.0,
            total_energy_j: 0.0,
            delay_sum_s: 0.0,
            min_extra_j: f64::INFINITY,
            max_extra_j: f64::NEG_INFINITY,
        }
    }

    /// Folds one device's results into the tally.
    #[allow(clippy::too_many_arguments)]
    pub fn absorb_device(
        &mut self,
        extra_energy_j: f64,
        total_energy_j: f64,
        normalized_delay_s: f64,
        packets_completed: u64,
        packets_unfinished: u64,
        heartbeats_sent: u64,
    ) {
        self.devices += 1;
        self.packets_completed += packets_completed;
        self.packets_unfinished += packets_unfinished;
        self.heartbeats_sent += heartbeats_sent;
        self.extra_energy_j += extra_energy_j;
        self.total_energy_j += total_energy_j;
        self.delay_sum_s += normalized_delay_s;
        self.min_extra_j = self.min_extra_j.min(extra_energy_j);
        self.max_extra_j = self.max_extra_j.max(extra_energy_j);
    }

    /// Merges `other` into `self`: counts, extrema and partial sums
    /// combine exactly, but the `f64` sums inherit the association of the
    /// partition — merging shard partials is *not* bit-identical to a
    /// serial device-order fold. Canonical fleet tallies are therefore
    /// folded from reassembled columns (see module docs); `merge` is for
    /// aggregation over a fixed, meaningful partition such as per-class
    /// tallies.
    pub fn merge(&mut self, other: &FleetTally) {
        self.devices += other.devices;
        self.packets_completed += other.packets_completed;
        self.packets_unfinished += other.packets_unfinished;
        self.heartbeats_sent += other.heartbeats_sent;
        self.extra_energy_j += other.extra_energy_j;
        self.total_energy_j += other.total_energy_j;
        self.delay_sum_s += other.delay_sum_s;
        self.min_extra_j = self.min_extra_j.min(other.min_extra_j);
        self.max_extra_j = self.max_extra_j.max(other.max_extra_j);
    }

    /// Population mean of per-device extra energy, J (0 when empty).
    pub fn mean_extra_j(&self) -> f64 {
        if self.devices > 0 {
            self.extra_energy_j / self.devices as f64
        } else {
            0.0
        }
    }

    /// Population mean of per-device normalized delay, s (0 when empty).
    pub fn mean_delay_s(&self) -> f64 {
        if self.devices > 0 {
            self.delay_sum_s / self.devices as f64
        } else {
            0.0
        }
    }
}

impl Default for FleetTally {
    fn default() -> Self {
        FleetTally::empty()
    }
}

/// One behavior class's slice of a fleet snapshot: its tally plus the
/// percentile distribution of per-device extra energy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSnapshot {
    /// The behavior class label (`active`, `moderate`, `inactive`).
    pub class: String,
    /// The class's mergeable aggregate.
    pub tally: FleetTally,
    /// Mean per-device extra energy, J.
    pub mean_extra_j: f64,
    /// Median per-device extra energy, J.
    pub p50_extra_j: f64,
    /// 95th-percentile per-device extra energy, J.
    pub p95_extra_j: f64,
    /// 99th-percentile per-device extra energy, J.
    pub p99_extra_j: f64,
}

/// The serializable summary of one whole fleet run — the
/// `BENCH_fleet.json` building block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSnapshot {
    /// The scheduler the fleet ran (display form, with knob values).
    pub scheduler: String,
    /// Devices simulated.
    pub devices: u64,
    /// Shards the population was split into.
    pub shards: u64,
    /// Worker threads that executed the shards.
    pub workers: u64,
    /// Wall-clock seconds for the whole fleet.
    pub wall_s: f64,
    /// The headline: devices simulated per wall-clock second.
    pub devices_per_s: f64,
    /// Fleet-wide aggregate (shard-order merge of all shard tallies).
    pub fleet: FleetTally,
    /// Per-class breakdown, in [`Activeness::all`] order
    /// (active, moderate, inactive); classes with zero devices are kept
    /// with empty tallies so the shape is fixed.
    ///
    /// [`Activeness::all`]: https://docs.rs/etrain-trace
    pub classes: Vec<ClassSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tally_of(devices: &[(f64, f64, f64)]) -> FleetTally {
        let mut t = FleetTally::empty();
        for &(extra, total, delay) in devices {
            t.absorb_device(extra, total, delay, 3, 1, 7);
        }
        t
    }

    #[test]
    fn merge_is_exact_on_counts_extrema_and_partial_sums() {
        let devices: Vec<(f64, f64, f64)> = (0..100)
            .map(|i| {
                let x = f64::from(i);
                (x * 0.1 + 0.01, x * 0.2 + 5.0, x * 0.001)
            })
            .collect();
        let serial = tally_of(&devices);
        let mut merged = FleetTally::empty();
        let mut partial_extra = 0.0f64;
        for shard in devices.chunks(7) {
            let t = tally_of(shard);
            partial_extra += t.extra_energy_j;
            merged.merge(&t);
        }
        // Counts and extrema are partition-independent.
        assert_eq!(serial.devices, merged.devices);
        assert_eq!(serial.packets_completed, merged.packets_completed);
        assert_eq!(serial.heartbeats_sent, merged.heartbeats_sent);
        assert_eq!(serial.min_extra_j, merged.min_extra_j);
        assert_eq!(serial.max_extra_j, merged.max_extra_j);
        // The f64 sums are exact over the partials merge was given — the
        // association of the partition, not the device-order fold. (This
        // is exactly why the fleet runner folds its canonical tally over
        // reassembled columns instead of merging shard tallies.)
        assert_eq!(partial_extra.to_bits(), merged.extra_energy_j.to_bits());
        assert!((serial.extra_energy_j - merged.extra_energy_j).abs() < 1e-9);
    }

    #[test]
    fn empty_tally_is_merge_identity_and_safe_means() {
        let mut t = tally_of(&[(2.0, 10.0, 0.5)]);
        let before = t;
        t.merge(&FleetTally::empty());
        assert_eq!(t, before);
        let empty = FleetTally::empty();
        assert_eq!(empty.mean_extra_j(), 0.0);
        assert_eq!(empty.mean_delay_s(), 0.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = FleetSnapshot {
            scheduler: "eTrain(Θ=20, k=20)".to_owned(),
            devices: 100,
            shards: 4,
            workers: 2,
            wall_s: 0.5,
            devices_per_s: 200.0,
            fleet: tally_of(&[(1.0, 2.0, 0.1), (3.0, 4.0, 0.2)]),
            classes: vec![ClassSnapshot {
                class: "active".to_owned(),
                tally: tally_of(&[(1.0, 2.0, 0.1)]),
                mean_extra_j: 1.0,
                p50_extra_j: 1.0,
                p95_extra_j: 1.0,
                p99_extra_j: 1.0,
            }],
        };
        let json = serde_json::to_string(&snap).expect("serializes");
        let back: FleetSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snap);
    }
}
