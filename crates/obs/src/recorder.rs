//! Event sinks: where journal records go once recorded.

use crate::EventRecord;
use std::collections::VecDeque;

/// A sink for [`EventRecord`]s.
///
/// Recorders are consumed as trait objects so instrumented code never
/// depends on a concrete sink: the engine records into whatever the
/// scenario configured — [`NullRecorder`] when observability is off,
/// [`RingRecorder`] for bounded in-memory capture, or
/// [`JsonLinesRecorder`] for full export.
///
/// ```
/// use etrain_obs::{Event, Journal, Recorder, RingRecorder};
///
/// let mut journal = Journal::new();
/// journal.push(1.0, Event::HeartbeatFired { size_bytes: 120 });
/// journal.push(2.0, Event::HeartbeatFired { size_bytes: 120 });
///
/// // Keep only the most recent event.
/// let mut ring = RingRecorder::new(1);
/// journal.replay(&mut ring);
/// assert_eq!(ring.records().count(), 1);
/// assert_eq!(ring[0].time_s, 2.0);
/// ```
pub trait Recorder: Send {
    /// Accepts one record. Implementations must not reorder records.
    fn record(&mut self, record: &EventRecord);

    /// Flushes any buffered output; the default is a no-op.
    fn flush(&mut self) {}
}

/// Discards every record (the zero-cost "off" sink).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&mut self, _record: &EventRecord) {}
}

/// Keeps the most recent `capacity` records in a bounded ring.
///
/// Each parallel `RunGrid` worker owns its journal (and therefore its
/// ring) exclusively, so no locking is involved.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    capacity: usize,
    buf: VecDeque<EventRecord>,
}

impl RingRecorder {
    /// A ring that retains at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity (a ring that can hold nothing records
    /// nothing; use [`NullRecorder`] for that).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be at least 1");
        RingRecorder {
            capacity,
            buf: VecDeque::with_capacity(capacity),
        }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &EventRecord> + '_ {
        self.buf.iter()
    }

    /// Consumes the ring, returning the retained records oldest first.
    pub fn into_records(self) -> Vec<EventRecord> {
        self.buf.into_iter().collect()
    }
}

impl std::ops::Index<usize> for RingRecorder {
    type Output = EventRecord;

    fn index(&self, index: usize) -> &EventRecord {
        &self.buf[index]
    }
}

impl Recorder for RingRecorder {
    fn record(&mut self, record: &EventRecord) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(record.clone());
    }
}

/// Streams each record as one JSON line into an [`std::io::Write`] sink.
///
/// I/O errors are counted rather than panicking: observability must never
/// abort a run. Check [`JsonLinesRecorder::write_errors`] after the run
/// if delivery matters.
#[derive(Debug)]
pub struct JsonLinesRecorder<W: std::io::Write + Send> {
    writer: W,
    write_errors: usize,
}

impl<W: std::io::Write + Send> JsonLinesRecorder<W> {
    /// Wraps a writer; one JSON object per [`EventRecord`] per line.
    pub fn new(writer: W) -> Self {
        JsonLinesRecorder {
            writer,
            write_errors: 0,
        }
    }

    /// Number of records (or flushes) dropped due to I/O errors.
    pub fn write_errors(&self) -> usize {
        self.write_errors
    }

    /// Consumes the recorder, returning the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: std::io::Write + Send> Recorder for JsonLinesRecorder<W> {
    fn record(&mut self, record: &EventRecord) {
        let line = serde_json::to_string(record).expect("event records serialize infallibly");
        if writeln!(self.writer, "{line}").is_err() {
            self.write_errors += 1;
        }
    }

    fn flush(&mut self) {
        if self.writer.flush().is_err() {
            self.write_errors += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, Journal};

    fn sample(n: usize) -> Journal {
        let mut journal = Journal::new();
        for i in 0..n {
            journal.push(i as f64, Event::HeartbeatFired { size_bytes: 100 });
        }
        journal
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut ring = RingRecorder::new(2);
        sample(5).replay(&mut ring);
        let kept: Vec<f64> = ring.records().map(|r| r.time_s).collect();
        assert_eq!(kept, vec![3.0, 4.0]);
        assert_eq!(ring[0].time_s, 3.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_ring_panics() {
        let _ = RingRecorder::new(0);
    }

    #[test]
    fn jsonl_recorder_matches_journal_rendering() {
        let journal = sample(3);
        let mut recorder = JsonLinesRecorder::new(Vec::new());
        journal.replay(&mut recorder);
        assert_eq!(recorder.write_errors(), 0);
        let written = String::from_utf8(recorder.into_inner()).unwrap();
        assert_eq!(written, journal.to_jsonl());
    }

    #[test]
    fn null_recorder_accepts_everything() {
        let mut null = NullRecorder;
        sample(10).replay(&mut null);
    }
}
