//! The paper's Sec. II-B measurement study as a runnable pipeline:
//! synthesize a Wireshark-style capture of a phone running IM apps plus
//! foreground traffic, classify its flows, and print the recovered
//! heartbeat table — the automated version of what the authors did by
//! hand to produce Table 1.
//!
//! ```text
//! cargo run --release --example capture_analysis
//! ```

use etrain::hb::{identify_heartbeat_flows, IdentifyConfig};
use etrain::trace::capture::{synthesize_capture, CaptureConfig};
use etrain::trace::heartbeats::TrainAppSpec;

fn main() {
    let config = CaptureConfig {
        trains: vec![
            TrainAppSpec::qq(),
            TrainAppSpec::wechat(),
            TrainAppSpec::whatsapp(),
            TrainAppSpec::renren(),
        ],
        burst_interarrival_s: 90.0,
        burst_len_max: 40,
        noise_rate: 0.05,
        duration_s: 2.0 * 3600.0,
    };
    let capture = synthesize_capture(&config, 2026);
    println!(
        "captured {} packets over {:.0} minutes across {} ground-truth heartbeat flows\n",
        capture.packets.len(),
        capture.duration_s / 60.0,
        capture.truth.len()
    );

    let flows = identify_heartbeat_flows(&capture, &IdentifyConfig::default());
    println!("flow             cycle    folded   beats  mean size  app");
    println!("---------------------------------------------------------");
    for flow in &flows {
        let app = capture
            .truth
            .iter()
            .find(|(key, _)| *key == flow.flow)
            .map(|(_, name)| name.as_str())
            .unwrap_or("??");
        println!(
            "{:>5} -> {:<5}  {:>6.1}s  {:>6}  {:>5}  {:>7.0} B  {}",
            flow.flow.local_port,
            flow.flow.remote_port,
            flow.cycle_s,
            flow.folded_cycle_s
                .map_or("-".to_owned(), |c| format!("{c:.1}s")),
            flow.beats,
            flow.mean_size_bytes,
            app,
        );
    }

    let recall = flows
        .iter()
        .filter(|f| capture.truth.iter().any(|(key, _)| *key == f.flow))
        .count() as f64
        / capture.truth.len() as f64;
    println!(
        "\nrecall {:.0} % — every keep-alive flow found despite {} packets of cover traffic",
        recall * 100.0,
        capture.packets.len()
    );
}
