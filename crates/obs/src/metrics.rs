//! Typed metrics: counters, gauges, histograms, and the snapshot that
//! lands in `RunReport` / `BENCH_repro.json`.
//!
//! # Absent vs. zero
//!
//! A metric that was never observed is **absent**, not zero: a run with
//! no transmissions has no tail-utilization ratio (dividing by zero
//! transmissions), which is different from a run whose transmissions all
//! missed the tail (utilization `0.0`). Snapshot fields that can be
//! undefined are therefore `Option`s, `None` is *omitted* from the JSON
//! encoding entirely (the skip-if-absent convention), and readers treat a
//! missing key as "not measured", never as `0.0`. Counters, by contrast,
//! are always well-defined and serialize even when zero.

use serde::{Deserialize, Serialize, Value};

/// A monotonically increasing event count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A point-in-time measured quantity.
///
/// A gauge distinguishes "never set" from "set to zero" — see the
/// module-level *absent vs. zero* convention.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Gauge {
    value: Option<f64>,
}

impl Gauge {
    /// Overwrites the gauge with a measurement.
    pub fn set(&mut self, value: f64) {
        self.value = Some(value);
    }

    /// The last measurement, or `None` if never set.
    pub fn get(&self) -> Option<f64> {
        self.value
    }
}

/// A fixed-bound histogram over `f64` observations.
///
/// Bucket `i` counts observations `<= bounds[i]`; one implicit overflow
/// bucket counts the rest. Bounds are chosen at construction and never
/// rebalanced, so two runs with the same bounds are directly comparable.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    max: f64,
}

impl Histogram {
    /// A histogram with the given ascending upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; buckets],
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations, or `None` when nothing was observed
    /// (absent, not zero).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Largest observation, or `None` when nothing was observed.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The configured upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }
}

/// The live registry an instrumented run fills in; call
/// [`MetricsRegistry::snapshot`] at the end of the run to freeze it into
/// a serializable [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRegistry {
    /// Heartbeats that departed.
    pub heartbeats: Counter,
    /// Transmissions that started (cargo bursts and heartbeats alike).
    pub tx_starts: Counter,
    /// Transmissions that started while the radio was out of IDLE.
    pub tail_reuses: Counter,
    /// Piggyback decisions evaluated.
    pub decisions: Counter,
    /// Packets released by piggyback decisions.
    pub releases: Counter,
    /// Retry attempts (including the final abandoning one).
    pub retries: Counter,
    /// Packets shed by admission control.
    pub sheds: Counter,
    /// Packets force-flushed by admission control.
    pub forced_flushes: Counter,
    /// Health-ladder transitions.
    pub health_transitions: Counter,
    /// RRC state transitions on the audited timeline.
    pub rrc_transitions: Counter,
    /// Energy attributed to time spent in IDLE, in joules.
    pub energy_idle_j: Gauge,
    /// Energy attributed to time spent in FACH, in joules.
    pub energy_fach_j: Gauge,
    /// Energy attributed to time spent in DCH, in joules.
    pub energy_dch_j: Gauge,
    /// Queue depth observed at each piggyback decision.
    pub queue_depth: Histogram,
}

impl MetricsRegistry {
    /// A registry with the standard queue-depth buckets.
    pub fn new() -> Self {
        MetricsRegistry {
            heartbeats: Counter::default(),
            tx_starts: Counter::default(),
            tail_reuses: Counter::default(),
            decisions: Counter::default(),
            releases: Counter::default(),
            retries: Counter::default(),
            sheds: Counter::default(),
            forced_flushes: Counter::default(),
            health_transitions: Counter::default(),
            rrc_transitions: Counter::default(),
            energy_idle_j: Gauge::default(),
            energy_fach_j: Gauge::default(),
            energy_dch_j: Gauge::default(),
            queue_depth: Histogram::with_bounds(vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]),
        }
    }

    /// Freezes the registry into a serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        crate::bump_snapshots();
        MetricsSnapshot {
            heartbeats: self.heartbeats.get(),
            tx_starts: self.tx_starts.get(),
            tail_reuses: self.tail_reuses.get(),
            decisions: self.decisions.get(),
            releases: self.releases.get(),
            retries: self.retries.get(),
            sheds: self.sheds.get(),
            forced_flushes: self.forced_flushes.get(),
            health_transitions: self.health_transitions.get(),
            rrc_transitions: self.rrc_transitions.get(),
            energy_idle_j: self.energy_idle_j.get(),
            energy_fach_j: self.energy_fach_j.get(),
            energy_dch_j: self.energy_dch_j.get(),
            tail_utilization: if self.tx_starts.get() == 0 {
                None
            } else {
                Some(self.tail_reuses.get() as f64 / self.tx_starts.get() as f64)
            },
            mean_queue_depth: self.queue_depth.mean(),
            max_queue_depth: self.queue_depth.max(),
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

/// A frozen, serializable view of a [`MetricsRegistry`].
///
/// Counters always serialize (zero is meaningful for them); `Option`
/// fields are **omitted** from the JSON object when `None`, per the
/// module-level *absent vs. zero* convention, and deserialize back to
/// `None` when the key is missing.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct MetricsSnapshot {
    /// Heartbeats that departed.
    pub heartbeats: u64,
    /// Transmissions that started.
    pub tx_starts: u64,
    /// Transmissions that re-used a tail (started out of IDLE).
    pub tail_reuses: u64,
    /// Piggyback decisions evaluated.
    pub decisions: u64,
    /// Packets released by piggyback decisions.
    pub releases: u64,
    /// Retry attempts.
    pub retries: u64,
    /// Packets shed.
    pub sheds: u64,
    /// Packets force-flushed.
    pub forced_flushes: u64,
    /// Health-ladder transitions.
    pub health_transitions: u64,
    /// RRC state transitions.
    pub rrc_transitions: u64,
    /// Energy attributed to IDLE time, joules; absent if not measured.
    pub energy_idle_j: Option<f64>,
    /// Energy attributed to FACH time, joules; absent if not measured.
    pub energy_fach_j: Option<f64>,
    /// Energy attributed to DCH time, joules; absent if not measured.
    pub energy_dch_j: Option<f64>,
    /// `tail_reuses / tx_starts`; absent when nothing was transmitted.
    pub tail_utilization: Option<f64>,
    /// Mean queue depth at decision time; absent without decisions.
    pub mean_queue_depth: Option<f64>,
    /// Max queue depth at decision time; absent without decisions.
    pub max_queue_depth: Option<f64>,
}

impl MetricsSnapshot {
    /// Sum of the per-RRC-state energy gauges, or `None` if none of them
    /// was measured. Cross-checked against `RunReport::total_energy_j` by
    /// the conformance tests.
    pub fn energy_total_j(&self) -> Option<f64> {
        match (self.energy_idle_j, self.energy_fach_j, self.energy_dch_j) {
            (None, None, None) => None,
            (idle, fach, dch) => {
                Some(idle.unwrap_or(0.0) + fach.unwrap_or(0.0) + dch.unwrap_or(0.0))
            }
        }
    }
}

// Hand-written so that `None` fields are omitted from the object rather
// than encoded as `null` (the vendored serde_derive has no
// `skip_serializing_if`); pairs with the derived `Deserialize`, which
// maps missing keys back to `None`.
impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = vec![
            ("heartbeats".into(), self.heartbeats.to_value()),
            ("tx_starts".into(), self.tx_starts.to_value()),
            ("tail_reuses".into(), self.tail_reuses.to_value()),
            ("decisions".into(), self.decisions.to_value()),
            ("releases".into(), self.releases.to_value()),
            ("retries".into(), self.retries.to_value()),
            ("sheds".into(), self.sheds.to_value()),
            ("forced_flushes".into(), self.forced_flushes.to_value()),
            (
                "health_transitions".into(),
                self.health_transitions.to_value(),
            ),
            ("rrc_transitions".into(), self.rrc_transitions.to_value()),
        ];
        let optional: [(&str, Option<f64>); 6] = [
            ("energy_idle_j", self.energy_idle_j),
            ("energy_fach_j", self.energy_fach_j),
            ("energy_dch_j", self.energy_dch_j),
            ("tail_utilization", self.tail_utilization),
            ("mean_queue_depth", self.mean_queue_depth),
            ("max_queue_depth", self.max_queue_depth),
        ];
        for (name, value) in optional {
            if let Some(v) = value {
                entries.push((name.into(), v.to_value()));
            }
        }
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::default();
        assert_eq!(g.get(), None);
        g.set(0.0);
        assert_eq!(g.get(), Some(0.0));
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::with_bounds(vec![1.0, 10.0]);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), None);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        assert_eq!(h.bucket_counts(), &[1, 1, 1]);
        assert_eq!(h.count(), 3);
        assert!((h.mean().unwrap() - 55.5 / 3.0).abs() < 1e-12);
        assert_eq!(h.max(), Some(50.0));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::with_bounds(vec![2.0, 1.0]);
    }

    #[test]
    fn snapshot_absent_fields_are_omitted_not_zero() {
        let registry = MetricsRegistry::new();
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.tail_utilization, None);
        assert_eq!(snapshot.mean_queue_depth, None);
        let json = serde_json::to_string(&snapshot).unwrap();
        assert!(json.contains("\"heartbeats\":0"), "{json}");
        assert!(!json.contains("tail_utilization"), "{json}");
        assert!(!json.contains("energy_idle_j"), "{json}");
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn snapshot_present_fields_round_trip() {
        let mut registry = MetricsRegistry::new();
        registry.tx_starts.add(4);
        registry.tail_reuses.add(3);
        registry.energy_idle_j.set(1.5);
        registry.energy_fach_j.set(0.0);
        registry.energy_dch_j.set(2.5);
        registry.queue_depth.observe(2.0);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.tail_utilization, Some(0.75));
        assert_eq!(snapshot.energy_total_j(), Some(4.0));
        let json = serde_json::to_string(&snapshot).unwrap();
        assert!(json.contains("\"energy_fach_j\":0"), "{json}");
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn energy_total_absent_when_unmeasured() {
        let snapshot = MetricsRegistry::new().snapshot();
        assert_eq!(snapshot.energy_total_j(), None);
    }
}
