//! `etrain` — command-line interface to the reproduction.
//!
//! ```text
//! etrain simulate   [--duration 7200] [--scheduler etrain|baseline|peres|etime]
//!                   [--theta 2.0] [--k inf|N] [--omega 0.5] [--v-bytes 20000]
//!                   [--lambda 0.08] [--deadline SECS] [--seed 7] [--json]
//! etrain sweep-theta [--from 0] [--to 3] [--steps 16] [--k inf|N] [--duration 7200]
//! etrain gen-traces  [--out DIR] [--duration 7200] [--seed 7]
//! etrain replay-user [--category active|moderate|inactive] [--theta 20] [--seed 42]
//! etrain compare     [--duration 7200] [--lambda 0.08] [--seed 7]
//! ```
//!
//! The per-figure reproduction binaries live in the `etrain-bench` crate
//! (`cargo run -p etrain-bench --bin repro_all`).

use std::collections::BTreeMap;
use std::process::ExitCode;

use etrain::apps::{replay, CargoAppModel};
use etrain::core::CoreConfig;
use etrain::sim::sweep::{lin_space, theta_sweep};
use etrain::sim::{Comparison, Scenario, SchedulerKind, Table};
use etrain::trace::heartbeats::{synthesize, TrainAppSpec};
use etrain::trace::user::{generate_app_use, Activeness};
use etrain::trace::{bandwidth, io, packets};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  etrain simulate    [--duration S] [--scheduler NAME] [--theta F] [--k inf|N]
                     [--omega F] [--v-bytes F] [--lambda F] [--deadline S]
                     [--seed N] [--json]
  etrain sweep-theta [--from F] [--to F] [--steps N] [--k inf|N] [--duration S]
  etrain gen-traces  [--out DIR] [--duration S] [--seed N]
  etrain replay-user [--category NAME] [--theta F] [--seed N]
  etrain compare     [--duration S] [--lambda F] [--theta F] [--omega F]
                     [--v-bytes F] [--seed N]";

/// Parsed `--key value` flags following the subcommand.
#[derive(Debug, Default, PartialEq)]
struct Flags {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {raw:?}")),
        }
    }

    fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }
}

/// Splits `args` into flag pairs and boolean switches.
fn parse_flags(args: &[String]) -> Result<Flags, String> {
    const SWITCHES: &[&str] = &["json"];
    let mut flags = Flags::default();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got {arg:?}"))?;
        if SWITCHES.contains(&key) {
            flags.switches.push(key.to_owned());
            i += 1;
        } else {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?;
            flags.values.insert(key.to_owned(), value.clone());
            i += 2;
        }
    }
    Ok(flags)
}

fn parse_k(flags: &Flags) -> Result<Option<usize>, String> {
    match flags.get("k") {
        None | Some("inf") => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("invalid value for --k: {raw:?}")),
    }
}

fn parse_scheduler(flags: &Flags) -> Result<SchedulerKind, String> {
    let name = flags.get("scheduler").unwrap_or("etrain");
    match name {
        "baseline" => Ok(SchedulerKind::Baseline),
        "etrain" => Ok(SchedulerKind::ETrain {
            theta: flags.parse("theta", 2.0)?,
            k: parse_k(flags)?,
        }),
        "peres" => Ok(SchedulerKind::PerEs {
            omega: flags.parse("omega", 0.5)?,
        }),
        "etime" => Ok(SchedulerKind::ETime {
            v_bytes: flags.parse("v-bytes", 20_000.0)?,
        }),
        other => Err(format!(
            "unknown scheduler {other:?} (expected baseline|etrain|peres|etime)"
        )),
    }
}

fn scenario_from(flags: &Flags) -> Result<Scenario, String> {
    let mut scenario = Scenario::paper_default()
        .duration_secs(flags.parse("duration", 7200u64)?)
        .lambda(flags.parse("lambda", 0.08)?)
        .seed(flags.parse("seed", 7u64)?);
    if let Some(deadline) = flags.get("deadline") {
        let deadline: f64 = deadline
            .parse()
            .map_err(|_| format!("invalid value for --deadline: {deadline:?}"))?;
        scenario = scenario.shared_deadline(deadline);
    }
    Ok(scenario)
}

fn run(args: &[String]) -> Result<(), String> {
    let (command, rest) = args
        .split_first()
        .ok_or_else(|| "missing subcommand".to_owned())?;
    let flags = parse_flags(rest)?;
    match command.as_str() {
        "simulate" => cmd_simulate(&flags),
        "sweep-theta" => cmd_sweep_theta(&flags),
        "gen-traces" => cmd_gen_traces(&flags),
        "replay-user" => cmd_replay_user(&flags),
        "compare" => cmd_compare(&flags),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn cmd_simulate(flags: &Flags) -> Result<(), String> {
    let scenario = scenario_from(flags)?.scheduler(parse_scheduler(flags)?);
    let report = scenario.run();
    if flags.has("json") {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| format!("serializing report: {e}"))?;
        println!("{json}");
        return Ok(());
    }
    let mut table = Table::new(
        format!("{} — {} s simulated", report.scheduler, report.horizon_s),
        &["metric", "value"],
    );
    table.push_row_strings(vec![
        "radio energy (J)".into(),
        format!("{:.1}", report.extra_energy_j),
    ]);
    table.push_row_strings(vec![
        "  transmitting (J)".into(),
        format!("{:.1}", report.transmission_energy_j),
    ]);
    table.push_row_strings(vec![
        "  tails (J)".into(),
        format!("{:.1}", report.tail_energy_j),
    ]);
    table.push_row_strings(vec![
        "heartbeats".into(),
        report.heartbeats_sent.to_string(),
    ]);
    table.push_row_strings(vec![
        "packets completed".into(),
        report.packets_completed.to_string(),
    ]);
    table.push_row_strings(vec![
        "packets unfinished".into(),
        report.packets_unfinished.to_string(),
    ]);
    table.push_row_strings(vec![
        "normalized delay (s)".into(),
        format!("{:.1}", report.normalized_delay_s),
    ]);
    table.push_row_strings(vec![
        "deadline violations".into(),
        format!("{:.1}%", report.deadline_violation_ratio * 100.0),
    ]);
    table.push_row_strings(vec![
        "radio promotions".into(),
        report.promotions.to_string(),
    ]);
    println!("{table}");
    Ok(())
}

fn cmd_sweep_theta(flags: &Flags) -> Result<(), String> {
    let from: f64 = flags.parse("from", 0.0)?;
    let to: f64 = flags.parse("to", 3.0)?;
    let steps: usize = flags.parse("steps", 16usize)?;
    if steps < 2 {
        return Err("--steps must be at least 2".to_owned());
    }
    if from > to {
        return Err("--from must not exceed --to".to_owned());
    }
    let base = scenario_from(flags)?;
    let k = parse_k(flags)?;
    let mut table = Table::new(
        "Θ sweep",
        &["theta", "energy_j", "delay_s", "violation_pct"],
    );
    for (theta, report) in theta_sweep(&base, &lin_space(from, to, steps), k) {
        table.push_row_strings(vec![
            format!("{theta:.2}"),
            format!("{:.1}", report.extra_energy_j),
            format!("{:.1}", report.normalized_delay_s),
            format!("{:.1}", report.deadline_violation_ratio * 100.0),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn cmd_gen_traces(flags: &Flags) -> Result<(), String> {
    let out = flags.get("out").unwrap_or("traces").to_owned();
    let duration: f64 = flags.parse("duration", 7200.0)?;
    let seed: u64 = flags.parse("seed", 7u64)?;
    std::fs::create_dir_all(&out).map_err(|e| format!("creating {out}: {e}"))?;

    let write = |name: &str, body: &dyn Fn(&mut Vec<u8>) -> Result<(), io::TraceIoError>| {
        let mut buf = Vec::new();
        body(&mut buf).map_err(|e| format!("{name}: {e}"))?;
        let path = format!("{out}/{name}");
        std::fs::write(&path, buf).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
        Ok::<(), String>(())
    };

    let bw = bandwidth::wuhan_drive_synthetic(seed);
    write("bandwidth.csv", &|w| io::write_bandwidth_csv(&bw, w))?;
    let pkts = packets::CargoWorkload::paper_default(0.08).generate(duration, seed);
    write("packets.csv", &|w| io::write_packets_csv(&pkts, w))?;

    // Describe what was generated, like a measurement study would.
    let ps = etrain::trace::summary::summarize_packets(&pkts);
    println!(
        "  packets: {} ({} B total, {:.3} pkt/s, sizes p10/p50/p90 = {}/{}/{} B)",
        ps.count,
        ps.total_bytes,
        ps.rate_pps,
        ps.size_percentiles[0],
        ps.size_percentiles[1],
        ps.size_percentiles[2],
    );
    let bs = etrain::trace::summary::summarize_bandwidth(&bw);
    println!(
        "  bandwidth: mean {:.0} kbps, p10/p50/p90 = {:.0}/{:.0}/{:.0} kbps, CV {:.2}",
        bs.mean_bps / 1000.0,
        bs.percentiles_bps[0] / 1000.0,
        bs.percentiles_bps[1] / 1000.0,
        bs.percentiles_bps[2] / 1000.0,
        bs.coefficient_of_variation,
    );
    let beats = synthesize(&TrainAppSpec::paper_trio(), duration, seed);
    write("heartbeats.csv", &|w| io::write_heartbeats_csv(&beats, w))?;
    let users: Vec<_> = etrain::trace::user::generate_cohort(5, seed)
        .into_iter()
        .flat_map(|t| t.records)
        .collect();
    write("users.csv", &|w| io::write_user_csv(&users, w))?;
    Ok(())
}

fn cmd_replay_user(flags: &Flags) -> Result<(), String> {
    let category = match flags.get("category").unwrap_or("active") {
        "active" => Activeness::Active,
        "moderate" => Activeness::Moderate,
        "inactive" => Activeness::Inactive,
        other => return Err(format!("unknown category {other:?}")),
    };
    let seed: u64 = flags.parse("seed", 42u64)?;
    let theta: f64 = flags.parse("theta", 20.0)?;
    let trace = generate_app_use(0, category, seed).normalized_to(600.0);
    let outcome = replay::replay_through_core(
        &trace,
        &CargoAppModel::weibo().with_deadline(30.0),
        &TrainAppSpec::paper_trio(),
        CoreConfig {
            theta,
            k: Some(20),
            slot_s: 1.0,
            startup_grace_s: 600.0,
            ..CoreConfig::default()
        },
    );
    let mut table = Table::new(
        format!("{category} user, 10-minute app use (Θ = {theta})"),
        &["metric", "value"],
    );
    table.push_row_strings(vec!["uploads".into(), outcome.decisions.len().to_string()]);
    table.push_row_strings(vec!["undelivered".into(), outcome.undelivered.to_string()]);
    table.push_row_strings(vec![
        "piggybacked".into(),
        format!("{:.1}%", outcome.piggyback_ratio * 100.0),
    ]);
    table.push_row_strings(vec![
        "mean delay (s)".into(),
        format!("{:.1}", outcome.mean_delay_s),
    ]);
    table.push_row_strings(vec!["heartbeats".into(), outcome.heartbeats.to_string()]);
    println!("{table}");
    Ok(())
}

fn cmd_compare(flags: &Flags) -> Result<(), String> {
    let base = scenario_from(flags)?;
    let contenders = vec![
        SchedulerKind::Baseline,
        SchedulerKind::ETrain {
            theta: flags.parse("theta", 2.0)?,
            k: parse_k(flags)?,
        },
        SchedulerKind::PerEs {
            omega: flags.parse("omega", 0.5)?,
        },
        SchedulerKind::ETime {
            v_bytes: flags.parse("v-bytes", 20_000.0)?,
        },
    ];
    let comparison = Comparison::run(&base, &contenders);
    println!(
        "{}",
        comparison.to_table("scheduler comparison (same workload/channel)")
    );
    if let Some(best) = comparison.most_efficient() {
        println!(
            "most efficient: {} ({:.1} J)",
            best.scheduler, best.extra_energy_j
        );
    }
    let front: Vec<String> = comparison
        .pareto_front()
        .iter()
        .map(|r| r.scheduler.clone())
        .collect();
    println!("(energy, violation) Pareto front: {}", front.join(", "));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn flags_parse_pairs_and_switches() {
        let flags = parse_flags(&args(&["--theta", "1.5", "--json", "--seed", "9"])).unwrap();
        assert_eq!(flags.get("theta"), Some("1.5"));
        assert_eq!(flags.parse("seed", 0u64).unwrap(), 9);
        assert!(flags.has("json"));
        assert!(!flags.has("csv"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = parse_flags(&args(&["--theta"])).unwrap_err();
        assert!(err.contains("needs a value"));
    }

    #[test]
    fn non_flag_is_an_error() {
        let err = parse_flags(&args(&["theta", "1.5"])).unwrap_err();
        assert!(err.contains("expected a --flag"));
    }

    #[test]
    fn k_parses_inf_and_numbers() {
        let flags = parse_flags(&args(&["--k", "inf"])).unwrap();
        assert_eq!(parse_k(&flags).unwrap(), None);
        let flags = parse_flags(&args(&["--k", "8"])).unwrap();
        assert_eq!(parse_k(&flags).unwrap(), Some(8));
        let flags = parse_flags(&args(&["--k", "soon"])).unwrap();
        assert!(parse_k(&flags).is_err());
    }

    #[test]
    fn scheduler_selection() {
        let flags = parse_flags(&args(&["--scheduler", "etime", "--v-bytes", "9000"])).unwrap();
        assert_eq!(
            parse_scheduler(&flags).unwrap(),
            SchedulerKind::ETime { v_bytes: 9000.0 }
        );
        let flags = parse_flags(&args(&["--scheduler", "warp"])).unwrap();
        assert!(parse_scheduler(&flags).is_err());
    }

    #[test]
    fn unknown_subcommand_is_reported() {
        let err = run(&args(&["fly"])).unwrap_err();
        assert!(err.contains("unknown subcommand"));
    }

    #[test]
    fn simulate_smoke() {
        run(&args(&[
            "simulate",
            "--duration",
            "600",
            "--scheduler",
            "baseline",
            "--seed",
            "1",
        ]))
        .expect("simulate runs");
    }

    #[test]
    fn compare_smoke() {
        run(&args(&["compare", "--duration", "600", "--seed", "2"])).expect("compare runs");
    }

    #[test]
    fn replay_user_smoke() {
        run(&args(&[
            "replay-user",
            "--category",
            "inactive",
            "--seed",
            "3",
        ]))
        .expect("replay runs");
    }
}
