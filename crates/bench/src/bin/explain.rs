//! Extension: journal-driven event-by-event decomposition of one
//! paper-default run's energy ledger. See `experiments::explain`.

fn main() {
    etrain_bench::run_binary("explain");
}
