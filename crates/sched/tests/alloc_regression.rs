//! Allocation-regression harness for the hot-path campaign: steady-state
//! scheduler decisions must not touch the allocator.
//!
//! A counting global allocator wraps `System`; the single test (one test
//! so no parallel test thread can allocate while the counter is armed)
//! pins down:
//!
//! - **zero** allocations across steady-state deferral slots for both
//!   eTrain (Θ-gated, queues loaded) and the baseline scheduler;
//! - a small constant budget for releasing slots (the returned `Vec` of
//!   selected packets is the only permitted allocation);
//! - a small constant budget for arrival slots once the queues have
//!   reached their high-water capacity.
//!
//! The crate under test `#![forbid(unsafe_code)]`s itself; the `unsafe`
//! needed to implement `GlobalAlloc` lives here, in the test crate, where
//! it only ever delegates to `System`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use etrain_sched::{
    AppProfile, BaselineScheduler, ETrainConfig, ETrainScheduler, Scheduler, SlotContext,
};
use etrain_trace::packets::Packet;
use etrain_trace::CargoAppId;

/// Delegates every operation to [`System`], counting `alloc`/`realloc`
/// calls while armed.
struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with the counter armed and returns how many allocations it
/// performed.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    ARMED.store(true, Ordering::Relaxed);
    let out = f();
    ARMED.store(false, Ordering::Relaxed);
    (ALLOCS.load(Ordering::Relaxed) - before, out)
}

fn packet(id: u64, app: usize, arrival_s: f64) -> Packet {
    Packet {
        id,
        app: CargoAppId(app),
        arrival_s,
        size_bytes: 2_000,
    }
}

fn slot_ctx(now_s: f64, heartbeat: bool) -> SlotContext {
    SlotContext {
        now_s,
        heartbeat_departing: heartbeat,
        predicted_bandwidth_bps: 450_000.0,
        trains_alive: true,
    }
}

#[test]
fn steady_state_decisions_do_not_allocate() {
    // --- eTrain, loaded queues, Θ never breached: pure deferral --------
    // Θ is far above what the backlog can accumulate within the driven
    // window, so every slot walks the full Θ-gate scan and defers.
    let mut etrain = ETrainScheduler::new(
        ETrainConfig {
            theta: 1e12,
            k: Some(4),
            slot_s: 1.0,
        },
        AppProfile::paper_trio(60.0),
    );
    for i in 0..96u64 {
        etrain
            .on_arrival(
                packet(i, (i % 3) as usize, i as f64 * 0.25),
                i as f64 * 0.25,
            )
            .expect("registered app");
    }
    // Warm-up: a releasing heartbeat slot sizes the selection scratch to
    // the full backlog, then the released packets are re-admitted so the
    // queues are back at their high-water mark.
    let warm = etrain.on_slot(&slot_ctx(100.0, true));
    assert_eq!(warm.len(), 4, "warm-up heartbeat releases k packets");
    for p in warm {
        etrain.on_tx_failure(p, 100.0).expect("re-admission");
    }

    let (deferral_allocs, released) = allocations_during(|| {
        let mut total = 0usize;
        for slot in 0..256u64 {
            total += etrain.on_slot(&slot_ctx(101.0 + slot as f64, false)).len();
        }
        total
    });
    assert_eq!(released, 0, "Θ = 1e12 must defer everything");
    assert_eq!(
        deferral_allocs, 0,
        "steady-state eTrain deferral slots must not allocate"
    );

    // --- eTrain, releasing slots: only the returned Vec ----------------
    // A heartbeat slot may allocate the selected-packet Vec it returns
    // (and nothing else); the re-admission push must reuse queue
    // capacity freed by the very packets being re-admitted.
    for round in 0..8u64 {
        let now_s = 400.0 + round as f64;
        let (release_allocs, released) =
            allocations_during(|| etrain.on_slot(&slot_ctx(now_s, true)));
        assert_eq!(released.len(), 4, "heartbeat slots release k = 4");
        assert!(
            release_allocs <= 1,
            "releasing slot allocated {release_allocs} times \
             (only the returned Vec is budgeted)"
        );
        let (readmit_allocs, ()) = allocations_during(|| {
            for p in released {
                etrain.on_tx_failure(p, now_s).expect("re-admission");
            }
        });
        assert_eq!(
            readmit_allocs, 0,
            "re-admission into warm queues must reuse capacity"
        );
    }

    // --- eTrain, arrival slots at high-water capacity ------------------
    // The queues have held 96 packets since warm-up, so admitting one
    // more packet per app may grow a `VecDeque` once, but a sustained
    // arrival stream after that must stay within a small constant budget.
    let drained = etrain.drain_pending();
    assert_eq!(drained.len(), 96);
    let (arrival_allocs, ()) = allocations_during(|| {
        for i in 0..96u64 {
            etrain
                .on_arrival(packet(1_000 + i, (i % 3) as usize, 500.0), 500.0)
                .expect("registered app");
        }
    });
    assert!(
        arrival_allocs <= 3,
        "96 arrivals into drained warm queues allocated {arrival_allocs} times \
         (one possible growth per app queue is the budget)"
    );

    // --- Baseline: slots never allocate, warm arrivals stay budgeted ---
    let mut baseline = BaselineScheduler::new(AppProfile::paper_trio(60.0));
    // Warm-up: the arrival bounce grows the queue and the drained Vec.
    let first = baseline
        .on_arrival(packet(0, 0, 0.0), 0.0)
        .expect("registered app");
    assert_eq!(first.len(), 1);
    let (baseline_slot_allocs, released) = allocations_during(|| {
        let mut total = 0usize;
        for slot in 0..256u64 {
            total += baseline
                .on_slot(&slot_ctx(1.0 + slot as f64, slot % 16 == 0))
                .len();
        }
        total
    });
    assert_eq!(released, 0, "baseline releases on arrival, never on slots");
    assert_eq!(baseline_slot_allocs, 0, "baseline slots must not allocate");
    let (baseline_arrival_allocs, ()) = allocations_during(|| {
        for i in 1..64u64 {
            let released = baseline
                .on_arrival(packet(i, 0, i as f64), i as f64)
                .expect("registered app");
            assert_eq!(released.len(), 1);
        }
    });
    // Each arrival legitimately returns a 1-element Vec (`drain_all`);
    // everything else must reuse warm capacity.
    assert!(
        baseline_arrival_allocs <= 63 + 3,
        "baseline arrivals allocated {baseline_arrival_allocs} times for 63 packets \
         (the returned Vec per arrival plus one-off growth is the budget)"
    );
}
