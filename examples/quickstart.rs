//! Quickstart: simulate a phone running the paper's three IM apps and
//! three cargo apps for two hours, with and without eTrain, and print the
//! energy/delay outcome.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use etrain::sim::{Scenario, SchedulerKind};

fn main() {
    // The paper's reference setup: QQ + WeChat + WhatsApp heartbeats,
    // Mail + Weibo + Cloud cargo at λ = 0.08 pkt/s, a synthetic 3G drive
    // bandwidth trace, Galaxy S4 radio parameters.
    let base = Scenario::paper_default().duration_secs(7200).seed(42);

    let baseline = base.clone().scheduler(SchedulerKind::Baseline).run();
    let etrain = base
        .scheduler(SchedulerKind::ETrain {
            theta: 2.0,
            k: None, // the paper's deployed k = ∞
        })
        .run();

    println!("=== eTrain quickstart: 2 h, 3 train apps, 3 cargo apps ===\n");
    for report in [&baseline, &etrain] {
        println!("{}:", report.scheduler);
        println!("  radio energy above idle  {:8.1} J", report.extra_energy_j);
        println!(
            "    transmitting           {:8.1} J",
            report.transmission_energy_j
        );
        println!("    tails                  {:8.1} J", report.tail_energy_j);
        println!("  heartbeats sent          {:8}", report.heartbeats_sent);
        println!("  packets transmitted      {:8}", report.packets_completed);
        println!(
            "  normalized delay         {:8.1} s",
            report.normalized_delay_s
        );
        println!(
            "  deadline violations      {:8.1} %",
            report.deadline_violation_ratio * 100.0
        );
        println!();
    }
    let saved = baseline.extra_energy_j - etrain.extra_energy_j;
    println!(
        "eTrain saved {:.1} J ({:.1} % of the radio energy) at {:.1} s average delay",
        saved,
        saved / baseline.extra_energy_j * 100.0,
        etrain.normalized_delay_s
    );
}
