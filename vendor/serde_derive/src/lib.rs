//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes this workspace declares: named-field structs, tuple structs,
//! unit structs, and enums with unit / newtype / tuple / struct-field
//! variants. Generated impls target the companion `serde` shim's
//! value-tree model (`to_value` / `from_value`).
//!
//! Written against raw `proc_macro` (no `syn`/`quote` — the build is
//! fully offline): a small hand-rolled parser extracts just the names
//! (type, fields, variants); field *types* never need to be parsed
//! because trait dispatch resolves them. `#[serde(...)]` attributes are
//! rejected loudly rather than silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: `Some(name)` for named fields, index-only otherwise.
#[derive(Debug, Clone)]
struct Field {
    name: Option<String>,
}

#[derive(Debug)]
enum Shape {
    /// `struct S;`
    UnitStruct,
    /// `struct S { a: T, b: U }` or `struct S(T, U);`
    Struct { fields: Vec<Field> },
    /// `enum E { ... }`
    Enum { variants: Vec<Variant> },
}

#[derive(Debug)]
struct Variant {
    name: String,
    /// `None` = unit variant; `Some(fields)` otherwise (named or tuple).
    fields: Option<Vec<Field>>,
}

#[derive(Debug)]
struct Item {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected type name, found `{other}`"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive shim does not support generic type `{name}`");
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                shape: Shape::Struct {
                    fields: parse_named_fields(g.stream()),
                },
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                shape: Shape::Struct {
                    fields: parse_tuple_fields(g.stream()),
                },
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
                name,
                shape: Shape::UnitStruct,
            },
            other => panic!("serde derive: unexpected struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                shape: Shape::Enum {
                    variants: parse_variants(g.stream()),
                },
            },
            other => panic!("serde derive: unexpected enum body: {other:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    }
}

/// Advances past doc comments, attributes, and visibility modifiers.
/// Rejects `#[serde(...)]` so unsupported renames/flags fail at compile
/// time instead of changing the wire format silently.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    let text = g.stream().to_string();
                    if text.starts_with("serde") {
                        panic!("serde derive shim does not support #[serde(...)] attributes");
                    }
                }
                *i += 2; // `#` + `[...]`
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` / `pub(in ...)`
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

/// Skips a type (or any expression) up to a top-level `,`, tracking `<>`
/// nesting. Groups are single atomic tokens, so only angle brackets need
/// depth counting.
fn skip_to_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth: i64 = 0;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1; // consume the comma
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected field name, found `{other}`"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field `{name}`, found {other:?}"),
        }
        skip_to_top_level_comma(&tokens, &mut i);
        fields.push(Field { name: Some(name) });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_to_top_level_comma(&tokens, &mut i);
        fields.push(Field { name: None });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected variant name, found `{other}`"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Some(parse_tuple_fields(g.stream()))
            }
            _ => None,
        };
        // Discriminants (`= expr`) are not supported with payload-free
        // serialization semantics differing; reject for clarity.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                panic!("serde derive shim does not support explicit enum discriminants");
            }
        }
        // Trailing comma between variants.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Struct { fields } => serialize_struct_body(fields),
        Shape::Enum { variants } => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&serialize_variant_arm(name, v));
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}\n"
    )
}

fn serialize_struct_body(fields: &[Field]) -> String {
    if fields.is_empty() {
        return "::serde::Value::Object(::std::vec::Vec::new())".to_string();
    }
    match fields[0].name {
        Some(_) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let n = f.name.as_ref().unwrap();
                    format!(
                        "(::std::string::String::from(\"{n}\"), \
                         ::serde::Serialize::to_value(&self.{n}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        None if fields.len() == 1 => {
            // Newtype struct: serialize transparently as the inner value.
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        None => {
            let items: Vec<String> = (0..fields.len())
                .map(|idx| format!("::serde::Serialize::to_value(&self.{idx})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
    }
}

fn serialize_variant_arm(ty: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.fields {
        None => format!(
            "{ty}::{vn} => ::serde::Value::String(::std::string::String::from(\"{vn}\")),\n"
        ),
        Some(fields) if fields.is_empty() => format!(
            "{ty}::{vn} {{}} => \
             ::serde::Value::String(::std::string::String::from(\"{vn}\")),\n"
        ),
        Some(fields) if fields[0].name.is_some() => {
            let names: Vec<&str> = fields.iter().map(|f| f.name.as_deref().unwrap()).collect();
            let bind = names.join(", ");
            let entries: Vec<String> = names
                .iter()
                .map(|n| {
                    format!(
                        "(::std::string::String::from(\"{n}\"), \
                         ::serde::Serialize::to_value({n}))"
                    )
                })
                .collect();
            format!(
                "{ty}::{vn} {{ {bind} }} => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{vn}\"), \
                  ::serde::Value::Object(::std::vec![{}]))]),\n",
                entries.join(", ")
            )
        }
        Some(fields) if fields.len() == 1 => format!(
            "{ty}::{vn}(__f0) => ::serde::Value::Object(::std::vec![\
             (::std::string::String::from(\"{vn}\"), \
              ::serde::Serialize::to_value(__f0))]),\n"
        ),
        Some(fields) => {
            let binds: Vec<String> = (0..fields.len()).map(|i| format!("__f{i}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{ty}::{vn}({}) => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{vn}\"), \
                  ::serde::Value::Array(::std::vec![{}]))]),\n",
                binds.join(", "),
                items.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => format!(
            "match __value {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), \
             __other => ::std::result::Result::Err(\
             ::serde::FromValueError::expected(\"null\", __other)) }}"
        ),
        Shape::Struct { fields } => deserialize_struct_body(name, fields),
        Shape::Enum { variants } => deserialize_enum_body(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::FromValueError> {{ {body} }}\n\
         }}\n"
    )
}

fn deserialize_struct_body(name: &str, fields: &[Field]) -> String {
    if fields.is_empty() {
        return format!("{{ let _ = __value; ::std::result::Result::Ok({name} {{}}) }}");
    }
    match fields[0].name {
        Some(_) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let n = f.name.as_ref().unwrap();
                    format!("{n}: ::serde::__field(__entries, \"{n}\")?")
                })
                .collect();
            format!(
                "{{ let __entries = __value.as_object().ok_or_else(|| \
                 ::serde::FromValueError::expected(\"object\", __value))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }}) }}",
                inits.join(", ")
            )
        }
        None if fields.len() == 1 => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        None => {
            let n = fields.len();
            let items: Vec<String> = (0..n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "{{ let __items = __value.as_array().ok_or_else(|| \
                 ::serde::FromValueError::expected(\"array\", __value))?;\n\
                 if __items.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::FromValueError::new(::std::format!(\
                 \"expected array of length {n}, found {{}}\", __items.len()))); }}\n\
                 ::std::result::Result::Ok({name}({})) }}",
                items.join(", ")
            )
        }
    }
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    // Unit variants arrive as Value::String(tag); payload variants as a
    // single-entry object { tag: payload } (serde's externally-tagged
    // representation).
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            None => {
                unit_arms.push_str(&format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                ));
            }
            Some(fields) if fields.is_empty() => {
                if fields.is_empty() {
                    unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{}}),\n"
                    ));
                }
            }
            Some(fields) if fields[0].name.is_some() => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        let n = f.name.as_ref().unwrap();
                        format!("{n}: ::serde::__field(__entries, \"{n}\")?")
                    })
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => {{ let __entries = __payload.as_object().ok_or_else(|| \
                     ::serde::FromValueError::expected(\"object\", __payload))?;\n\
                     ::std::result::Result::Ok({name}::{vn} {{ {} }}) }},\n",
                    inits.join(", ")
                ));
            }
            Some(fields) if fields.len() == 1 => {
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                     ::serde::Deserialize::from_value(__payload)?)),\n"
                ));
            }
            Some(fields) => {
                let n = fields.len();
                let items: Vec<String> = (0..n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => {{ let __items = __payload.as_array().ok_or_else(|| \
                     ::serde::FromValueError::expected(\"array\", __payload))?;\n\
                     if __items.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::FromValueError::new(::std::format!(\
                     \"expected array of length {n}, found {{}}\", __items.len()))); }}\n\
                     ::std::result::Result::Ok({name}::{vn}({})) }},\n",
                    items.join(", ")
                ));
            }
        }
    }
    format!(
        "match __value {{\n\
         ::serde::Value::String(__tag) => match __tag.as_str() {{\n\
             {unit_arms}\
             __other => ::std::result::Result::Err(\
             ::serde::FromValueError::unknown_variant(__other, \"{name}\")),\n\
         }},\n\
         ::serde::Value::Object(__obj) if __obj.len() == 1 => {{\n\
             let (__tag, __payload) = &__obj[0];\n\
             let _ = __payload;\n\
             match __tag.as_str() {{\n\
                 {tagged_arms}\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(\
                 ::serde::FromValueError::unknown_variant(__other, \"{name}\")),\n\
             }}\n\
         }},\n\
         __other => ::std::result::Result::Err(\
         ::serde::FromValueError::expected(\"enum tag\", __other)),\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde derive shim generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde derive shim generated invalid Deserialize impl")
}
