//! Diurnal (time-of-day) workload modulation.
//!
//! The paper's 2-hour traces are stationary, but its motivating scenario —
//! apps idling in a pocket all day — is not: users post at lunch and in
//! the evening, and barely at 4 AM. Day-scale experiments (battery-life
//! projections, overnight standby studies) need a non-homogeneous arrival
//! process. This module provides a sinusoidal day profile and a thinning
//! sampler that modulates any [`CargoWorkload`].

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::packets::{CargoWorkload, Packet};
use crate::rng::{exponential, seeded};
use crate::CargoAppId;

/// Seconds in a day.
pub const DAY_S: f64 = 86_400.0;

/// A sinusoidal day-activity profile.
///
/// The instantaneous rate multiplier is
/// `1 + amplitude · cos(2π (t − peak) / day)`, so activity peaks at
/// `peak_hour` and bottoms out twelve hours away. `amplitude = 0` is the
/// stationary process; `amplitude = 1` silences the trough entirely.
///
/// # Examples
///
/// ```
/// use etrain_trace::diurnal::DiurnalProfile;
///
/// let p = DiurnalProfile::new(20.0, 0.8); // peaks at 8 PM
/// assert!((p.rate_multiplier(20.0 * 3600.0) - 1.8).abs() < 1e-9);
/// assert!((p.rate_multiplier(8.0 * 3600.0) - 0.2).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalProfile {
    peak_hour: f64,
    amplitude: f64,
}

impl DiurnalProfile {
    /// Creates a profile peaking at `peak_hour` (0–24) with the given
    /// `amplitude` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `peak_hour` is outside `[0, 24]` or `amplitude` outside
    /// `[0, 1]`.
    pub fn new(peak_hour: f64, amplitude: f64) -> Self {
        assert!(
            (0.0..=24.0).contains(&peak_hour),
            "peak hour must be within a day"
        );
        assert!(
            (0.0..=1.0).contains(&amplitude),
            "amplitude must be in [0, 1]"
        );
        DiurnalProfile {
            peak_hour,
            amplitude,
        }
    }

    /// A typical evening-heavy consumer profile: peak 8 PM, 80 % swing.
    pub fn evening_heavy() -> Self {
        DiurnalProfile::new(20.0, 0.8)
    }

    /// The instantaneous rate multiplier at `t_s` seconds since midnight
    /// (periodic beyond one day), in `[1 − amplitude, 1 + amplitude]`.
    pub fn rate_multiplier(&self, t_s: f64) -> f64 {
        let phase = (t_s - self.peak_hour * 3600.0) / DAY_S * std::f64::consts::TAU;
        1.0 + self.amplitude * phase.cos()
    }

    /// The peak multiplier (used as the thinning envelope).
    pub fn peak_multiplier(&self) -> f64 {
        1.0 + self.amplitude
    }
}

/// Generates a diurnally modulated packet trace from `workload` over
/// `[0, horizon_s)` starting at `start_hour` o'clock, via thinning: each
/// app's arrivals are drawn at its peak rate and kept with probability
/// `multiplier(t) / peak`.
///
/// Ids are dense in arrival order, like
/// [`CargoWorkload::generate`].
///
/// # Examples
///
/// ```
/// use etrain_trace::diurnal::{generate_diurnal, DiurnalProfile};
/// use etrain_trace::packets::CargoWorkload;
///
/// let workload = CargoWorkload::paper_default(0.08);
/// let packets = generate_diurnal(&workload, DiurnalProfile::evening_heavy(),
///                                0.0, 86_400.0, 7);
/// assert!(!packets.is_empty());
/// ```
pub fn generate_diurnal(
    workload: &CargoWorkload,
    profile: DiurnalProfile,
    start_hour: f64,
    horizon_s: f64,
    seed: u64,
) -> Vec<Packet> {
    let mut rng = seeded(seed);
    let peak = profile.peak_multiplier();
    let offset_s = start_hour * 3600.0;
    let mut packets = Vec::new();
    for (i, spec) in workload.specs().iter().enumerate() {
        // Thinning: sample at the envelope rate, accept proportionally.
        let envelope_interarrival = spec.mean_interarrival_s / peak;
        let mut t = exponential(&mut rng, envelope_interarrival);
        while t < horizon_s {
            let accept = profile.rate_multiplier(offset_s + t) / peak;
            if rng.gen_bool(accept.clamp(0.0, 1.0)) {
                packets.push(Packet {
                    id: 0,
                    app: CargoAppId(i),
                    arrival_s: t,
                    size_bytes: spec.size.sample(&mut rng).round().max(1.0) as u64,
                });
            }
            t += exponential(&mut rng, envelope_interarrival);
        }
    }
    packets.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
    for (i, p) in packets.iter_mut().enumerate() {
        p.id = i as u64;
    }
    packets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_spans_the_advertised_range() {
        let p = DiurnalProfile::new(12.0, 0.5);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for h in 0..24 {
            let m = p.rate_multiplier(h as f64 * 3600.0);
            lo = lo.min(m);
            hi = hi.max(m);
        }
        assert!((lo - 0.5).abs() < 0.01);
        assert!((hi - 1.5).abs() < 0.01);
    }

    #[test]
    fn zero_amplitude_matches_stationary_rate() {
        let workload = CargoWorkload::paper_default(0.08);
        let flat = DiurnalProfile::new(12.0, 0.0);
        let packets = generate_diurnal(&workload, flat, 0.0, 50_000.0, 3);
        let expected = 0.08 * 50_000.0;
        let n = packets.len() as f64;
        assert!(
            (n - expected).abs() / expected < 0.1,
            "{n} vs expected {expected}"
        );
    }

    #[test]
    fn peak_hours_carry_more_traffic_than_trough_hours() {
        let workload = CargoWorkload::paper_default(0.08);
        let profile = DiurnalProfile::evening_heavy();
        let packets = generate_diurnal(&workload, profile, 0.0, DAY_S, 5);
        let count_in = |from_h: f64, to_h: f64| {
            packets
                .iter()
                .filter(|p| p.arrival_s >= from_h * 3600.0 && p.arrival_s < to_h * 3600.0)
                .count()
        };
        let evening = count_in(18.0, 22.0);
        let early = count_in(6.0, 10.0);
        assert!(
            evening > 2 * early,
            "evening {evening} should dwarf early morning {early}"
        );
    }

    #[test]
    fn output_is_sorted_with_dense_ids() {
        let workload = CargoWorkload::paper_default(0.08);
        let packets = generate_diurnal(&workload, DiurnalProfile::evening_heavy(), 9.0, 7200.0, 6);
        assert!(packets.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        for (i, p) in packets.iter().enumerate() {
            assert_eq!(p.id, i as u64);
        }
    }

    #[test]
    #[should_panic(expected = "amplitude must be in")]
    fn excessive_amplitude_rejected() {
        let _ = DiurnalProfile::new(12.0, 1.5);
    }
}
