//! User-trace replay: the paper's controlled-experiment methodology.
//!
//! The paper records user behaviour as `(User ID, Behavior type, Time,
//! Packet Size)` tuples and replays them on instrumented phones with and
//! without eTrain (Sec. VI-D). This module provides both replay paths of
//! the reproduction:
//!
//! - [`replay_through_core`] — drive a trace through the *live*
//!   [`ETrainCore`] system (heartbeats from train-app specs, 1-second
//!   ticks, requests from upload records) and collect the decisions;
//! - [`to_packets`] — convert a trace to a simulator packet trace, so the
//!   energy of the replay can be measured by `etrain-sim` (used by the
//!   Fig. 11 reproduction).

use etrain_core::{CoreConfig, ETrainCore, TransmitDecision, TransmitRequest};
use etrain_trace::heartbeats::TrainAppSpec;
use etrain_trace::packets::Packet;
use etrain_trace::user::{AppUseTrace, BehaviorType};
use etrain_trace::CargoAppId;

use crate::model::CargoAppModel;

/// Outcome of replaying one app-use trace through the live system.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// Decisions in the order they were made.
    pub decisions: Vec<TransmitDecision>,
    /// Upload records still undecided when the trace ended.
    pub undelivered: usize,
    /// Mean scheduling delay over decided requests, in seconds.
    pub mean_delay_s: f64,
    /// Fraction of decided requests that piggybacked on a heartbeat.
    pub piggyback_ratio: f64,
    /// Heartbeats that departed during the replay.
    pub heartbeats: usize,
}

/// Replays `trace` through a fresh [`ETrainCore`]: the trace's upload
/// records become transmit requests of a cargo app registered with
/// `model`'s profile; `trains` supply the heartbeat departures; the core
/// ticks every second for `trace.duration_s`, plus a final drain tick after
/// the last train of the horizon.
///
/// Browse records carry no uplink data and are skipped, matching the
/// paper's replay ("replays the user traces ... record the energy
/// consumption").
pub fn replay_through_core(
    trace: &AppUseTrace,
    model: &CargoAppModel,
    trains: &[TrainAppSpec],
    config: CoreConfig,
) -> ReplayOutcome {
    let mut core = ETrainCore::new(config);
    let train_ids: Vec<_> = trains
        .iter()
        .map(|spec| core.register_train(spec.name.clone()))
        .collect();
    let app = core.register_cargo(model.profile.clone());

    // Merge heartbeat departures and upload submissions into one ordered
    // event list, then drive the core with 1 s ticks in between.
    let horizon = trace.duration_s;
    let mut events: Vec<(f64, Event)> = Vec::new();
    for (spec, &id) in trains.iter().zip(&train_ids) {
        for t in spec.pattern.departure_times(spec.phase_s, horizon) {
            events.push((t, Event::Heartbeat(id)));
        }
    }
    for record in &trace.records {
        if record.behavior == BehaviorType::Upload {
            events.push((record.time_s, Event::Upload(record.size_bytes)));
        }
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut decisions = Vec::new();
    let mut submitted = 0usize;
    let mut next_tick = 0.0f64;
    for (t, event) in events {
        while next_tick < t {
            decisions.extend(core.tick(next_tick).expect("monotone ticks"));
            next_tick += 1.0;
        }
        match event {
            Event::Heartbeat(id) => {
                decisions.extend(core.on_heartbeat(id, t).expect("registered train"));
            }
            Event::Upload(size) => {
                submitted += 1;
                core.submit(app, TransmitRequest::upload(size.max(1)), t)
                    .expect("registered cargo app");
            }
        }
    }
    while next_tick <= horizon {
        decisions.extend(core.tick(next_tick).expect("monotone ticks"));
        next_tick += 1.0;
    }

    // Final drain: an upload that arrived after the horizon's last train
    // (and below Θ) would otherwise be stranded at trace end. Ride it on
    // the next departures past the horizon, as the live system would.
    let mut drained_heartbeats = 0usize;
    let mut t_cursor = horizon;
    while core.pending_requests() > 0 && !trains.is_empty() && drained_heartbeats < 64 {
        let mut next: Option<(f64, etrain_trace::TrainAppId)> = None;
        for (spec, &id) in trains.iter().zip(&train_ids) {
            let upcoming = spec
                .pattern
                .departure_times(spec.phase_s, t_cursor + 7200.0)
                .into_iter()
                .find(|&t| t > t_cursor);
            if let Some(t) = upcoming {
                if next.is_none_or(|(best, _)| t < best) {
                    next = Some((t, id));
                }
            }
        }
        let Some((t, id)) = next else { break };
        decisions.extend(core.on_heartbeat(id, t).expect("registered train"));
        drained_heartbeats += 1;
        t_cursor = t;
    }

    let decided = decisions.len();
    let mean_delay_s = if decided > 0 {
        decisions.iter().map(TransmitDecision::delay_s).sum::<f64>() / decided as f64
    } else {
        0.0
    };
    let piggybacked = decisions
        .iter()
        .filter(|d| d.piggybacked_on.is_some())
        .count();
    let heartbeats = trains
        .iter()
        .map(|spec| spec.pattern.departure_times(spec.phase_s, horizon).len())
        .sum::<usize>()
        + drained_heartbeats;
    ReplayOutcome {
        piggyback_ratio: if decided > 0 {
            piggybacked as f64 / decided as f64
        } else {
            0.0
        },
        undelivered: submitted - decided,
        mean_delay_s,
        decisions,
        heartbeats,
    }
}

enum Event {
    Heartbeat(etrain_trace::TrainAppId),
    Upload(u64),
}

/// Converts a user trace's upload records into a simulator packet trace
/// for cargo app `app` (ids dense from 0, sorted by time).
pub fn to_packets(trace: &AppUseTrace, app: CargoAppId) -> Vec<Packet> {
    let mut packets: Vec<Packet> = trace
        .records
        .iter()
        .filter(|r| r.behavior == BehaviorType::Upload)
        .map(|r| Packet {
            id: 0,
            app,
            arrival_s: r.time_s,
            size_bytes: r.size_bytes.max(1),
        })
        .collect();
    packets.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
    for (i, p) in packets.iter_mut().enumerate() {
        p.id = i as u64;
    }
    packets
}

#[cfg(test)]
mod tests {
    use super::*;
    use etrain_trace::user::{generate_app_use, Activeness};

    fn trace() -> AppUseTrace {
        generate_app_use(1, Activeness::Moderate, 9).normalized_to(600.0)
    }

    #[test]
    fn replay_decides_every_upload() {
        let outcome = replay_through_core(
            &trace(),
            &CargoAppModel::weibo(),
            &TrainAppSpec::paper_trio(),
            CoreConfig::default(),
        );
        assert_eq!(outcome.undelivered, 0);
        assert_eq!(
            outcome.decisions.len(),
            trace().upload_count(),
            "every upload gets a decision"
        );
        assert!(outcome.heartbeats >= 6, "600 s of the paper trio");
    }

    #[test]
    fn high_theta_replay_piggybacks_mostly() {
        let config = CoreConfig {
            theta: 50.0,
            ..CoreConfig::default()
        };
        let outcome = replay_through_core(
            &trace(),
            &CargoAppModel::weibo(),
            &TrainAppSpec::paper_trio(),
            config,
        );
        assert_eq!(outcome.undelivered, 0);
        assert!(
            outcome.piggyback_ratio > 0.9,
            "with a high gate, almost everything rides trains (got {})",
            outcome.piggyback_ratio
        );
        assert!(outcome.mean_delay_s > 5.0);
    }

    #[test]
    fn no_trains_degenerates_to_immediate() {
        let outcome = replay_through_core(
            &trace(),
            &CargoAppModel::weibo(),
            &[],
            CoreConfig::default(),
        );
        assert_eq!(outcome.undelivered, 0);
        assert_eq!(outcome.piggyback_ratio, 0.0);
        assert!(outcome.mean_delay_s < 2.0);
        assert_eq!(outcome.heartbeats, 0);
    }

    #[test]
    fn to_packets_keeps_only_uploads() {
        let t = trace();
        let packets = to_packets(&t, CargoAppId(1));
        assert_eq!(packets.len(), t.upload_count());
        assert!(packets.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        for (i, p) in packets.iter().enumerate() {
            assert_eq!(p.id, i as u64);
            assert_eq!(p.app, CargoAppId(1));
            assert!(p.size_bytes >= 1);
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let run = || {
            replay_through_core(
                &trace(),
                &CargoAppModel::weibo(),
                &TrainAppSpec::paper_trio(),
                CoreConfig::default(),
            )
        };
        assert_eq!(run(), run());
    }
}
