//! Ablation: robustness under channel faults.
//!
//! The paper evaluates eTrain on clean traces; real cellular channels
//! lose transfers mid-flight and go dark in coverage holes. This ablation
//! sweeps a per-transmission loss probability and a periodic-outage duty
//! cycle over both eTrain and the transmit-on-arrival baseline, reporting
//! the fault-era metrics (retries, wasted retry joules, abandonment) next
//! to the paper's energy/delay numbers. The interesting question: does
//! piggybacking stay ahead of the baseline when attempts can fail — i.e.
//! is the energy saving robust, or an artifact of a lossless channel?

use crate::ExperimentResult;
use etrain_sim::{FaultPlan, RetryPolicy, Scenario, SchedulerKind, Table};

use super::{j, paper_base, pct, s};

/// Periodic outage: `duty` fraction of every 600-second period is dark.
fn with_outage_duty(plan: FaultPlan, duty: f64, horizon_s: f64) -> FaultPlan {
    if duty <= 0.0 {
        return plan;
    }
    let period_s = 600.0;
    plan.with_periodic_outages(120.0, duty * period_s, period_s, horizon_s)
}

fn scheduler_name(kind: &SchedulerKind) -> &'static str {
    match kind {
        SchedulerKind::Baseline => "baseline",
        SchedulerKind::ETrain { .. } => "etrain",
        _ => "other",
    }
}

/// Runs the fault ablation.
pub fn run(quick: bool) -> ExperimentResult {
    let base = paper_base(quick);
    let horizon_s = if quick { 2400.0 } else { 7200.0 };
    let losses: &[f64] = if quick {
        &[0.0, 0.1, 0.3]
    } else {
        &[0.0, 0.05, 0.1, 0.2, 0.3]
    };
    let duties: &[f64] = if quick { &[0.0, 0.2] } else { &[0.0, 0.1, 0.2] };
    let schedulers = [
        SchedulerKind::ETrain {
            theta: 2.0,
            k: None,
        },
        SchedulerKind::Baseline,
    ];

    let mut table = Table::new(
        "Ablation — channel faults (loss × outage duty, Θ = 2, k = ∞)",
        &[
            "loss",
            "outage_duty",
            "scheduler",
            "energy_j",
            "delay_s",
            "violations",
            "retries",
            "wasted_retry_j",
            "abandoned",
        ],
    );
    for &loss in losses {
        for &duty in duties {
            for kind in &schedulers {
                let plan =
                    with_outage_duty(FaultPlan::seeded(0xFA_17).with_loss(loss), duty, horizon_s);
                let report = run_one(base.clone(), *kind, plan);
                table.push_row_strings(vec![
                    format!("{loss:.2}"),
                    format!("{duty:.2}"),
                    scheduler_name(kind).to_owned(),
                    j(report.extra_energy_j),
                    s(report.normalized_delay_s),
                    pct(report.deadline_violation_ratio),
                    report.retries.to_string(),
                    j(report.wasted_retry_energy_j),
                    pct(report.abandonment_ratio),
                ]);
            }
        }
    }
    ExperimentResult::from_tables(vec![table]).headline_cell(
        "worst_case_retries",
        0,
        -1,
        "retries",
        "count",
    )
}

fn run_one(base: Scenario, kind: SchedulerKind, plan: FaultPlan) -> etrain_sim::RunReport {
    base.scheduler(kind)
        .faults(plan)
        .retry_policy(RetryPolicy::default())
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_cost_energy_and_trigger_retries() {
        let tables = run(true).tables;
        let csv = tables[0].to_csv();
        let rows: Vec<Vec<&str>> = csv
            .lines()
            .skip(1)
            .map(|r| r.split(',').collect())
            .collect();
        // The lossless rows report zero retries and zero wasted joules.
        for row in rows.iter().filter(|r| r[0] == "0.00" && r[1] == "0.00") {
            assert_eq!(row[6], "0", "lossless run retried: {row:?}");
            assert_eq!(row[7], "0.0", "lossless run wasted energy: {row:?}");
        }
        // The highest loss rate produces retries and wasted energy for
        // both schedulers.
        for row in rows.iter().filter(|r| r[0] == "0.30" && r[1] == "0.00") {
            let retries: usize = row[6].parse().unwrap();
            let wasted: f64 = row[7].parse().unwrap();
            assert!(retries > 0, "lossy run never retried: {row:?}");
            assert!(wasted > 0.0, "lossy retries should burn energy: {row:?}");
        }
    }
}
