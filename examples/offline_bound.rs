//! The paper's Sec. III offline formulation in action: solve a small
//! instance exactly, compare the greedy heuristic and online Algorithm 1
//! against it, and print where each packet ends up.
//!
//! ```text
//! cargo run --release --example offline_bound
//! ```

use etrain::radio::RadioParams;
use etrain::sched::{AppProfile, CostProfile, OfflineProblem};
use etrain::sim::{BandwidthSource, Scenario, SchedulerKind};
use etrain::trace::heartbeats::{synthesize, TrainAppSpec};
use etrain::trace::packets::{CargoAppSpec, CargoWorkload};
use etrain::trace::rng::TruncatedNormal;

fn main() {
    let horizon = 600.0;
    let workload = CargoWorkload::new(vec![CargoAppSpec::new(
        "Weibo",
        110.0,
        TruncatedNormal::from_mean_min(2_000.0, 100.0),
    )]);
    let packets = workload.generate(horizon, 3);
    let heartbeats = synthesize(&[TrainAppSpec::wechat().with_phase(40.0)], horizon, 5);
    let profiles = vec![AppProfile::new("Weibo", CostProfile::weibo(120.0))];

    println!(
        "=== offline bound: {} packets, {} heartbeats, 10-minute window ===\n",
        packets.len(),
        heartbeats.len()
    );

    let problem = OfflineProblem {
        packets: packets.clone(),
        heartbeats: heartbeats.clone(),
        profiles: profiles.clone(),
        radio: RadioParams::galaxy_s4_3g(),
        bandwidth_bps: 450_000.0,
        horizon_s: horizon,
        cost_budget: f64::MAX,
    };
    let optimal = problem.solve_exhaustive().expect("small instance");
    let greedy = problem.solve_greedy();

    println!("packet  arrives  optimal sends  (wait)");
    for release in &optimal.releases {
        println!(
            "  #{:<4} {:>6.1}s  {:>9.1}s  ({:>5.1}s)",
            release.packet.id,
            release.packet.arrival_s,
            release.release_s,
            release.release_s - release.packet.arrival_s,
        );
    }

    let online = Scenario::paper_default()
        .duration_secs(horizon as u64)
        .profiles(profiles)
        .packets(packets)
        .heartbeats(heartbeats)
        .bandwidth(BandwidthSource::Constant(450_000.0))
        .scheduler(SchedulerKind::ETrain {
            theta: 50.0,
            k: None,
        })
        .run();

    println!("\nenergy (extra over idle):");
    println!("  offline optimum   {:>7.2} J", optimal.energy_j);
    println!("  offline greedy    {:>7.2} J", greedy.energy_j);
    println!("  online Algorithm1 {:>7.2} J", online.extra_energy_j);
    println!(
        "  online gap        {:>+7.1} %",
        (online.extra_energy_j / optimal.energy_j - 1.0) * 100.0
    );
    println!(
        "\nThe paper proves the offline problem NP-hard and ships the online\n\
         heuristic; on instances small enough to solve exactly, the online\n\
         algorithm is within a couple of percent of optimal."
    );
}
