//! File-sync chunking for eTrain Cloud.
//!
//! A cloud-storage app syncing a multi-megabyte file should not submit it
//! as one request: a single huge transfer blocks the radio long past any
//! heartbeat tail and leaves nothing to piggyback later. Chunking splits
//! the file into bounded requests so successive chunks can ride
//! *successive* trains — the transfer stretches over several heartbeat
//! cycles but every chunk's tail is a heartbeat's tail. This mirrors how
//! real sync clients (and the paper's eTrain Cloud) upload in parts.

use etrain_core::{CargoClient, CoreError, RequestId, TransmitRequest};
use etrain_trace::packets::Packet;
use etrain_trace::CargoAppId;
use serde::{Deserialize, Serialize};

/// A file to synchronize, split into bounded chunks.
///
/// # Examples
///
/// ```
/// use etrain_apps::FileSync;
///
/// let sync = FileSync::new(1_048_576, 262_144); // 1 MiB in 256 KiB chunks
/// assert_eq!(sync.chunk_count(), 4);
/// assert_eq!(sync.chunk_sizes().iter().sum::<u64>(), 1_048_576);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileSync {
    total_bytes: u64,
    chunk_bytes: u64,
}

impl FileSync {
    /// Describes a sync of `total_bytes` in chunks of at most
    /// `chunk_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new(total_bytes: u64, chunk_bytes: u64) -> Self {
        assert!(total_bytes > 0, "file must be non-empty");
        assert!(chunk_bytes > 0, "chunk size must be positive");
        FileSync {
            total_bytes,
            chunk_bytes,
        }
    }

    /// Total file size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Maximum chunk size in bytes.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_bytes
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.total_bytes.div_ceil(self.chunk_bytes) as usize
    }

    /// The chunk sizes in upload order (all `chunk_bytes` except a
    /// possibly smaller final chunk).
    pub fn chunk_sizes(&self) -> Vec<u64> {
        let full = (self.total_bytes / self.chunk_bytes) as usize;
        let mut sizes = vec![self.chunk_bytes; full];
        let rest = self.total_bytes % self.chunk_bytes;
        if rest > 0 {
            sizes.push(rest);
        }
        sizes
    }

    /// Submits every chunk to the live eTrain system as an upload request,
    /// returning the ids of the admitted chunks in order. The scheduler is
    /// then free to spread the chunks over several trains. Under bounded
    /// admission a chunk may be shed; shed chunks have no id and should be
    /// resubmitted once pressure eases.
    ///
    /// # Errors
    ///
    /// Returns the first [`CoreError`] encountered; chunks already
    /// submitted stay queued (the sync can be resumed by re-submitting the
    /// rest).
    pub fn submit_all(&self, client: &CargoClient) -> Result<Vec<RequestId>, CoreError> {
        let mut ids = Vec::new();
        for size in self.chunk_sizes() {
            if let Some(id) = client.submit(TransmitRequest::upload(size))?.id() {
                ids.push(id);
            }
        }
        Ok(ids)
    }

    /// Converts the sync to a simulator packet trace: all chunks arrive at
    /// `start_s` (the moment the user saves the file), ids from `first_id`.
    pub fn to_packets(&self, app: CargoAppId, start_s: f64, first_id: u64) -> Vec<Packet> {
        self.chunk_sizes()
            .into_iter()
            .enumerate()
            .map(|(i, size)| Packet {
                id: first_id + i as u64,
                app,
                arrival_s: start_s,
                size_bytes: size,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etrain_core::{CoreConfig, ETrainCore};
    use etrain_sched::{AppProfile, CostProfile};

    #[test]
    fn exact_division_has_no_tail_chunk() {
        let sync = FileSync::new(1000, 250);
        assert_eq!(sync.chunk_sizes(), vec![250, 250, 250, 250]);
    }

    #[test]
    fn remainder_becomes_final_chunk() {
        let sync = FileSync::new(1000, 300);
        assert_eq!(sync.chunk_sizes(), vec![300, 300, 300, 100]);
        assert_eq!(sync.chunk_count(), 4);
    }

    #[test]
    fn single_chunk_when_file_is_small() {
        let sync = FileSync::new(10, 1000);
        assert_eq!(sync.chunk_sizes(), vec![10]);
    }

    #[test]
    fn to_packets_preserves_total() {
        let sync = FileSync::new(123_456, 10_000);
        let packets = sync.to_packets(CargoAppId(2), 42.0, 7);
        assert_eq!(packets.iter().map(|p| p.size_bytes).sum::<u64>(), 123_456);
        assert_eq!(packets[0].id, 7);
        assert!(packets.iter().all(|p| p.arrival_s == 42.0));
    }

    #[test]
    fn chunks_ride_successive_trains_through_the_core() {
        // A 300 KB file in 100 KB chunks; one train every 100 s; k = 1 so
        // each train carries exactly one chunk.
        let mut core = ETrainCore::new(CoreConfig {
            theta: 1e9,
            k: Some(1),
            slot_s: 1.0,
            startup_grace_s: 600.0,
            ..CoreConfig::default()
        });
        let train = core.register_train("QQ");
        let cloud = core.register_cargo(AppProfile::new("Cloud", CostProfile::cloud(600.0)));
        core.on_heartbeat(train, 0.0).unwrap();

        let sync = FileSync::new(300_000, 100_000);
        for size in sync.chunk_sizes() {
            core.submit(cloud, etrain_core::TransmitRequest::upload(size), 10.0)
                .unwrap();
        }
        let mut per_train = Vec::new();
        for t in [100.0, 200.0, 300.0] {
            per_train.push(core.on_heartbeat(train, t).unwrap().len());
        }
        assert_eq!(per_train, vec![1, 1, 1], "one chunk per train at k = 1");
        assert_eq!(core.pending_requests(), 0);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        let _ = FileSync::new(10, 0);
    }
}
