//! Cycle-change detection.
//!
//! Heartbeat cycles are stable (paper Table 1), but they do change at
//! discrete moments: an app update ships a new keep-alive interval, the
//! push service renegotiates, or the OS throttles background timers. A
//! deployed eTrain must notice such a change quickly — predictions based
//! on the old cycle would announce trains that never depart.
//!
//! [`ChangeDetector`] runs a CUSUM (cumulative sum) test on the relative
//! deviation of each observed gap from the current cycle estimate: small
//! jitter cancels out, a systematic shift accumulates and trips the alarm,
//! after which the detector re-learns from post-change observations only.

use crate::detect::{CycleDetector, DetectedPattern};

/// CUSUM-based detector for changes in a fixed heartbeat cycle.
///
/// # Examples
///
/// ```
/// use etrain_hb::ChangeDetector;
///
/// let mut d = ChangeDetector::new();
/// for i in 0..8 {
///     assert!(!d.observe(i as f64 * 300.0)); // stable 300 s cycle
/// }
/// // The app updates: the cycle drops to 180 s.
/// let mut changed = false;
/// for i in 1..=6 {
///     changed |= d.observe(7.0 * 300.0 + i as f64 * 180.0);
/// }
/// assert!(changed, "cycle change must be detected");
/// let new_cycle = d.current_cycle_s().expect("re-learned");
/// assert!((new_cycle - 180.0).abs() < 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct ChangeDetector {
    detector: CycleDetector,
    last_time_s: Option<f64>,
    cusum_pos: f64,
    cusum_neg: f64,
    threshold: f64,
    slack: f64,
    changes: usize,
}

impl ChangeDetector {
    /// Creates a detector with the default sensitivity (alarm after a
    /// sustained ≈ 15 % shift for about three beats; single-gap outliers
    /// of any size also trip it).
    pub fn new() -> Self {
        ChangeDetector {
            detector: CycleDetector::new(),
            last_time_s: None,
            cusum_pos: 0.0,
            cusum_neg: 0.0,
            threshold: 0.45,
            slack: 0.05,
            changes: 0,
        }
    }

    /// Creates a detector with explicit CUSUM parameters: `threshold` is
    /// the accumulated relative deviation that raises the alarm, `slack`
    /// the per-gap deviation absorbed as jitter.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not strictly positive.
    pub fn with_sensitivity(threshold: f64, slack: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        assert!(slack > 0.0, "slack must be positive");
        ChangeDetector {
            threshold,
            slack,
            ..ChangeDetector::new()
        }
    }

    /// Records a heartbeat at `time_s`. Returns `true` when this
    /// observation raised a cycle-change alarm (the detector then resets
    /// and starts re-learning from this observation on).
    pub fn observe(&mut self, time_s: f64) -> bool {
        let gap = self.last_time_s.map(|last| time_s - last);
        self.last_time_s = Some(time_s);

        let cycle = self.current_cycle_s();
        self.detector.observe(time_s);

        let (Some(gap), Some(cycle)) = (gap, cycle) else {
            return false;
        };
        if gap <= 0.0 || cycle <= 0.0 {
            return false;
        }
        let deviation = (gap - cycle) / cycle;
        self.cusum_pos = (self.cusum_pos + deviation - self.slack).max(0.0);
        self.cusum_neg = (self.cusum_neg - deviation - self.slack).max(0.0);
        if self.cusum_pos > self.threshold || self.cusum_neg > self.threshold {
            self.changes += 1;
            // Restart learning from the post-change observation.
            self.detector = CycleDetector::new();
            self.detector.observe(time_s);
            self.cusum_pos = 0.0;
            self.cusum_neg = 0.0;
            return true;
        }
        false
    }

    /// The current fixed-cycle estimate, if one is established.
    pub fn current_cycle_s(&self) -> Option<f64> {
        match self.detector.detect() {
            DetectedPattern::Fixed { cycle_s, .. } => Some(cycle_s),
            _ => None,
        }
    }

    /// Number of cycle changes detected so far.
    pub fn changes(&self) -> usize {
        self.changes
    }
}

impl Default for ChangeDetector {
    fn default() -> Self {
        ChangeDetector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_stable(d: &mut ChangeDetector, start: f64, cycle: f64, n: usize) -> f64 {
        let mut t = start;
        for _ in 0..n {
            d.observe(t);
            t += cycle;
        }
        t - cycle
    }

    #[test]
    fn stable_cycle_never_alarms() {
        let mut d = ChangeDetector::new();
        let mut t = 0.0;
        for _ in 0..50 {
            assert!(!d.observe(t));
            t += 270.0;
        }
        assert_eq!(d.changes(), 0);
        assert!((d.current_cycle_s().unwrap() - 270.0).abs() < 1e-9);
    }

    #[test]
    fn jitter_within_slack_never_alarms() {
        use rand::Rng;
        let mut rng = etrain_trace::rng::seeded(8);
        let mut d = ChangeDetector::new();
        let mut alarms = 0;
        for i in 0..60 {
            let jitter: f64 = rng.gen_range(-6.0..6.0); // ~2 % of 300 s
            if d.observe(i as f64 * 300.0 + jitter) {
                alarms += 1;
            }
        }
        assert_eq!(alarms, 0, "2 % jitter must not alarm");
    }

    #[test]
    fn halved_cycle_detected_quickly() {
        let mut d = ChangeDetector::new();
        let last = feed_stable(&mut d, 0.0, 300.0, 10);
        let mut beats_until_alarm = 0;
        let mut t = last;
        loop {
            t += 150.0;
            beats_until_alarm += 1;
            if d.observe(t) {
                break;
            }
            assert!(beats_until_alarm < 10, "alarm too slow");
        }
        assert!(beats_until_alarm <= 3, "took {beats_until_alarm} beats");
        assert_eq!(d.changes(), 1);
    }

    #[test]
    fn lengthened_cycle_detected_and_relearned() {
        let mut d = ChangeDetector::new();
        let last = feed_stable(&mut d, 0.0, 240.0, 10);
        let mut t = last;
        let mut alarmed = false;
        for _ in 0..8 {
            t += 480.0;
            alarmed |= d.observe(t);
        }
        assert!(alarmed);
        let relearned = d.current_cycle_s().expect("re-learned after change");
        assert!((relearned - 480.0).abs() < 5.0, "relearned {relearned}");
    }

    #[test]
    fn multiple_changes_counted() {
        let mut d = ChangeDetector::new();
        let mut t = feed_stable(&mut d, 0.0, 300.0, 8);
        for cycle in [150.0, 600.0] {
            for _ in 0..8 {
                t += cycle;
                d.observe(t);
            }
        }
        assert!(d.changes() >= 2, "changes {}", d.changes());
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn bad_sensitivity_rejected() {
        let _ = ChangeDetector::with_sensitivity(0.0, 0.1);
    }
}
